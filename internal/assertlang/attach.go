package assertlang

import (
	"vase/internal/mna"
	"vase/internal/sim"
)

// Monitors compiles one monitor per assertion.
func Monitors(as []*Assertion) []*Monitor {
	ms := make([]*Monitor, len(as))
	for i, a := range as {
		ms[i] = NewMonitor(a)
	}
	return ms
}

// FinishAll resolves every monitor against the trace's truncation flag.
func FinishAll(ms []*Monitor, truncated bool) []Outcome {
	out := make([]Outcome, len(ms))
	for i, m := range ms {
		out[i] = m.Finish(truncated)
	}
	return out
}

// StreamSim returns a sim.Options.OnSample callback that drives the
// monitors during the transient — the streaming evaluation path. Resolve
// the verdicts afterwards with FinishAll(ms, trace.Truncated).
func StreamSim(ms []*Monitor) func(t float64, probe func(name string) (float64, bool)) {
	return func(t float64, probe func(name string) (float64, bool)) {
		for _, m := range ms {
			m.Step(t, probe)
		}
	}
}

// CheckTrace evaluates the assertions offline over a recorded behavioral
// trace. It observes exactly the recorded signals; an assertion referencing
// an unrecorded net resolves to Unknown.
func CheckTrace(as []*Assertion, tr *sim.Trace) []Outcome {
	return CheckSampled(as, tr.Time, func(name string, i int) (float64, bool) {
		s, ok := tr.Signals[name]
		if !ok || i >= len(s) {
			return 0, false
		}
		return s[i], true
	}, tr.Truncated)
}

// StreamCircuit returns an mna.Circuit.OnSample callback that drives the
// monitors during a circuit-level transient, resolving netlist net names to
// polarity-corrected node voltages through the elaboration. Resolve the
// verdicts afterwards with FinishAll(ms, tran.Truncated).
func StreamCircuit(el *mna.Elaborated, ms []*Monitor) func(t float64, v mna.Solution) {
	return func(t float64, v mna.Solution) {
		env := func(name string) (float64, bool) { return circuitValue(el, v, name) }
		for _, m := range ms {
			m.Step(t, env)
		}
	}
}

// circuitValue resolves one net name against a solution vector.
func circuitValue(el *mna.Elaborated, v mna.Solution, name string) (float64, bool) {
	n, ok := el.NodeOf[name]
	if !ok || int(n) >= len(v) {
		return 0, false
	}
	pol := el.PolOf[name]
	if pol == 0 {
		pol = 1
	}
	return pol * v[n], true
}

// CheckTran evaluates the assertions offline over a recorded circuit-level
// transient.
func CheckTran(as []*Assertion, el *mna.Elaborated, tr *mna.Tran) []Outcome {
	cols := map[string][]float64{}
	for _, a := range as {
		for _, name := range a.Signals {
			if _, seen := cols[name]; !seen {
				cols[name] = el.V(tr, name)
			}
		}
	}
	return CheckSampled(as, tr.Time, func(name string, i int) (float64, bool) {
		s := cols[name]
		if s == nil || i >= len(s) {
			return 0, false
		}
		return s[i], true
	}, tr.Truncated)
}

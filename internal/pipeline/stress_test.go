package pipeline

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"vase/internal/mapper"
)

// mixerVariant derives a distinct-but-valid spec from mixerSrc by changing
// one coefficient, giving each key its own deterministic netlist.
func mixerVariant(i int) (name, text string) {
	return fmt.Sprintf("mixer%d.vhd", i),
		fmt.Sprintf(`
entity mixer%d is
  port (
    quantity a : in real is voltage;
    quantity b : in real is voltage;
    quantity y : out real is voltage
  );
end entity;
architecture beh of mixer%d is
begin
  y == %d.0 * a + 2.0 * b;
end architecture;
`, i, i, 2+i)
}

// TestConcurrentClientsOnePipeline is the concurrent-clients stress test of
// the shared-pipeline contract: N goroutines hammer one Pipeline with a mix
// of identical and distinct synthesis keys. Every distinct key must be
// computed exactly once (single-flight dedup plus the memo caches), every
// response must be byte-identical to the others of its key, and the whole
// run must be clean under -race.
func TestConcurrentClientsOnePipeline(t *testing.T) {
	const (
		distinct = 4  // distinct specs (one map key each)
		clients  = 32 // concurrent clients, 8 per spec
		rounds   = 3  // repeat requests per client (warm hits)
	)
	p := newPipe(t, Options{})
	opts := mapper.DefaultOptions()
	opts.Workers = 1 // keep the search itself sequential; the stress is on the pipeline

	dumps := make([][]string, distinct)
	for i := range dumps {
		dumps[i] = make([]string, 0, clients/distinct*rounds)
	}
	var mu sync.Mutex

	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		spec := c % distinct
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			name, text := mixerVariant(spec)
			for r := 0; r < rounds; r++ {
				res, _, _, err := p.Synthesize(context.Background(), name, text, opts)
				if err != nil {
					t.Errorf("spec %d: %v", spec, err)
					return
				}
				mu.Lock()
				dumps[spec] = append(dumps[spec], res.Netlist.Dump())
				mu.Unlock()
			}
		}()
	}
	close(start)
	wg.Wait()

	for i := 0; i < distinct; i++ {
		// The map stage must have run exactly once per key: every other
		// request was a memory hit or joined the in-flight computation.
		// (cached=false covers both the one real compute and shared joins,
		// so assert on the stage counters instead.)
		if got := dumps[i]; len(got) != clients/distinct*rounds {
			t.Fatalf("spec %d: %d responses, want %d", i, len(got), clients/distinct*rounds)
		}
		for _, d := range dumps[i] {
			if d != dumps[i][0] {
				t.Errorf("spec %d: divergent netlist bytes across concurrent clients", i)
				break
			}
		}
		for j := i + 1; j < distinct; j++ {
			if dumps[i][0] == dumps[j][0] {
				t.Errorf("specs %d and %d returned identical netlists — keys collided", i, j)
			}
		}
	}
	st := p.Stats().Stage(StageMap)
	if st.Misses != distinct {
		t.Errorf("map stage ran %d computations, want exactly %d (one per distinct key); stats %+v",
			st.Misses, distinct, st)
	}
	if st.Errors != 0 || st.Degraded != 0 {
		t.Errorf("stress run recorded errors/degraded: %+v", st)
	}
	total := st.Hits + st.DiskHits + st.Shared + st.Misses
	if want := uint64(clients * rounds); total != want {
		t.Errorf("map stage served %d requests, want %d", total, want)
	}
}

// TestStatsSnapshotUnderLoad hammers Stats() while requests are in flight:
// with the pre-atomic counters this is a data race (caught by -race once
// the counters moved off the pipeline mutex); with atomics the snapshot
// must also stay arithmetically consistent.
func TestStatsSnapshotUnderLoad(t *testing.T) {
	p := newPipe(t, Options{})
	stop := make(chan struct{})
	var snapper sync.WaitGroup
	snapper.Add(1)
	go func() {
		defer snapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := p.Stats().Stage(StageCompile)
			if st.Hits+st.Misses+st.Shared+st.DiskHits < st.Errors {
				t.Error("snapshot tore: error count exceeds total requests")
			}
		}
	}()

	const clients = 16
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		spec := c % 4
		go func() {
			defer wg.Done()
			name, text := mixerVariant(spec)
			for r := 0; r < 8; r++ {
				if _, err := p.Compile(context.Background(), name, text); err != nil {
					t.Errorf("compile: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	snapper.Wait()

	// Final coherence: all requests accounted for, compute time only on
	// misses.
	st := p.Stats().Stage(StageCompile)
	if total := st.Hits + st.DiskHits + st.Shared + st.Misses + st.Errors; total != clients*8 {
		t.Errorf("compile stage accounted %d requests, want %d (%+v)", total, clients*8, st)
	}
	if st.Misses != 4 {
		t.Errorf("compile ran %d times, want 4 distinct keys (%+v)", st.Misses, st)
	}
	if st.Misses > 0 && p.Stats().Latency[StageCompile].Count() != st.Misses {
		t.Errorf("latency histogram holds %d observations, want %d",
			p.Stats().Latency[StageCompile].Count(), st.Misses)
	}
}

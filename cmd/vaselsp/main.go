// Command vaselsp is the VASS language server. It speaks the Language
// Server Protocol over stdio: full-document sync, publishDiagnostics from
// the error-recovering front end (syntax errors never blank the analysis),
// hover showing abstract-interpretation value ranges, and documentSymbol
// outlines. All open documents form one project, so an architecture in one
// buffer resolves its entity and packages from the others, and the shared
// content-addressed pipeline re-analyzes only what each edit can affect.
//
// Usage:
//
//	vaselsp [-cache-dir DIR] [-smoke] [-v]
//
// Point an LSP client at the binary (stdio transport). -smoke runs the
// built-in client scenario against an in-process server and exits; CI uses
// it to keep the protocol honest.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"vase/internal/exitcode"
	"vase/internal/lsp"
	"vase/internal/pipeline"
)

func main() {
	cacheDir := flag.String("cache-dir", "", "persist parse and sema artifacts in this directory (content-addressed, shareable with the CLIs)")
	memEntries := flag.Int("cache-entries", 0, "in-memory LRU entries (0 = default)")
	smoke := flag.Bool("smoke", false, "run the built-in client scenario against an in-process server and exit")
	verbose := flag.Bool("v", false, "log protocol-level notices to stderr")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "vaselsp: unexpected arguments %v (usage: vaselsp [flags])\n", flag.Args())
		os.Exit(exitcode.Usage)
	}

	pipe, err := pipeline.New(pipeline.Options{
		MemoryEntries: *memEntries,
		CacheDir:      *cacheDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vaselsp: %v\n", err)
		os.Exit(exitcode.Error)
	}

	logf := func(string, ...any) {}
	if *verbose || *smoke {
		l := log.New(os.Stderr, "vaselsp: ", 0)
		logf = l.Printf
	}

	if *smoke {
		if err := lsp.Smoke(context.Background(), pipe, logf); err != nil {
			fmt.Fprintf(os.Stderr, "vaselsp: %v\n", err)
			os.Exit(exitcode.Error)
		}
		fmt.Println("vaselsp: smoke OK (diagnostics published, cleared; hover and outline answered)")
		return
	}

	srv := lsp.New(os.Stdin, os.Stdout, pipe, logf)
	if err := srv.Run(context.Background()); err != nil {
		fmt.Fprintf(os.Stderr, "vaselsp: %v\n", err)
		os.Exit(exitcode.Error)
	}
}

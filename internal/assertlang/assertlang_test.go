package assertlang

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, text string) *Assertion {
	t.Helper()
	a, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return a
}

func TestParseForms(t *testing.T) {
	cases := []struct {
		text    string
		form    Form
		window  float64
		signals []string
	}{
		{"always v(earph) <= 1.6", Always, 0, []string{"earph"}},
		{"always abs(earph) <= 1.6", Always, 0, []string{"earph"}},
		{"eventually earph >= 1.4 within 0.4 ms", Eventually, 0.4e-3, []string{"earph"}},
		{"eventually v(y) > 0.5 within 2e-3", Eventually, 2e-3, []string{"y"}},
		{"recurrence v(wave) > 0 every 1.5 ms", Recurrence, 1.5e-3, []string{"wave"}},
		{"bound y in -2.5 .. 2.5", Always, 0, []string{"y"}},
		{"always v(a) + 2 * v(b) < abs(v(c)) - 0.5", Always, 0, []string{"a", "b", "c"}},
		{"always (v(a) > 0 and v(b) > 0) or not v(c) >= 1", Always, 0, []string{"a", "b", "c"}},
		{"always min(v(a), v(b)) <= max(v(a), v(b))", Always, 0, []string{"a", "b"}},
		{"eventually v(x) /= 0 within 10 us", Eventually, 10 * 1e-6, []string{"x"}},
		{"always v(g1.out) >= -10", Always, 0, []string{"g1.out"}},
	}
	for _, tc := range cases {
		a := mustParse(t, tc.text)
		if a.Form != tc.form {
			t.Errorf("%q: form %v, want %v", tc.text, a.Form, tc.form)
		}
		if d := a.Window - tc.window; d > 1e-12*tc.window || d < -1e-12*tc.window {
			t.Errorf("%q: window %g, want %g", tc.text, a.Window, tc.window)
		}
		if strings.Join(a.Signals, ",") != strings.Join(tc.signals, ",") {
			t.Errorf("%q: signals %v, want %v", tc.text, a.Signals, tc.signals)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"sometimes v(a) > 0",
		"always v(a)",
		"always > 0",
		"eventually v(a) > 0",
		"eventually v(a) > 0 within",
		"eventually v(a) > 0 within -1",
		"eventually v(a) > 0 within 0",
		"recurrence v(a) > 0",
		"bound in 0 .. 1",
		"bound x in 2 .. 1",
		"bound x in 0 ..",
		"always v( > 0",
		"always v(a) > 0 trailing",
		"always abs(a > 0",
	}
	for _, text := range bad {
		if a, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted: %+v", text, a)
		}
	}
}

func TestBoundDesugarsToAlways(t *testing.T) {
	a := mustParse(t, "bound y in -1.5 .. 1.5")
	env := func(v float64) func(string) (float64, bool) {
		return func(string) (float64, bool) { return v, true }
	}
	for _, tc := range []struct {
		v    float64
		want bool
	}{{0, true}, {1.5, true}, {-1.5, true}, {1.6, false}, {-2, false}} {
		got, ok := a.Pred.Eval(env(tc.v))
		if !ok || got != tc.want {
			t.Errorf("bound at v=%g: got %v ok=%v, want %v", tc.v, got, ok, tc.want)
		}
	}
}

func TestPragmaExtraction(t *testing.T) {
	src := `-- assert: always v(y) <= 2
entity e is
  port (quantity y : out real);
end entity;
-- a plain comment
architecture a of e is
begin -- assert: eventually v(y) > 1 within 2 ms
  y == 1.0;
end architecture;
`
	as, err := FromSource(src)
	if err != nil {
		t.Fatalf("FromSource: %v", err)
	}
	if len(as) != 2 {
		t.Fatalf("got %d assertions, want 2", len(as))
	}
	if as[0].Form != Always || as[1].Form != Eventually {
		t.Errorf("forms %v/%v, want always/eventually", as[0].Form, as[1].Form)
	}
}

func TestPragmaErrorsCarryLine(t *testing.T) {
	src := "entity e is end entity;\n-- assert: nonsense here\n"
	_, err := FromSource(src)
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want a line-2 parse error, got %v", err)
	}
}

// series feeds a monitor a sampled waveform with uniform step h.
func series(a *Assertion, h float64, vals []float64, truncated bool) Outcome {
	m := NewMonitor(a)
	for i, v := range vals {
		v := v
		m.Step(float64(i)*h, func(string) (float64, bool) { return v, true })
	}
	return m.Finish(truncated)
}

func TestAlwaysSemantics(t *testing.T) {
	a := mustParse(t, "always v(y) <= 1")
	if o := series(a, 1, []float64{0, 0.5, 1}, false); o.Verdict != Pass {
		t.Errorf("always hold: %v", o)
	}
	if o := series(a, 1, []float64{0, 2, 0}, false); o.Verdict != Fail || o.At != 1 {
		t.Errorf("always violation: %v at %g", o, o.At)
	}
	// A violation in the observed prefix is conclusive even when truncated.
	if o := series(a, 1, []float64{0, 2}, true); o.Verdict != Fail {
		t.Errorf("always violated prefix must fail: %v", o)
	}
	// An unviolated truncated prefix is inconclusive, not a pass.
	if o := series(a, 1, []float64{0, 0.5}, true); o.Verdict != Unknown {
		t.Errorf("always truncated prefix must be unknown: %v", o)
	}
}

func TestEventuallySemantics(t *testing.T) {
	a := mustParse(t, "eventually v(y) > 1 within 2.5")
	if o := series(a, 1, []float64{0, 0, 2, 0}, false); o.Verdict != Pass || o.At != 2 {
		t.Errorf("eventually satisfied: %v", o)
	}
	if o := series(a, 1, []float64{0, 0, 0, 0, 2}, false); o.Verdict != Fail {
		t.Errorf("eventually late satisfaction must fail: %v", o)
	}
	if o := series(a, 1, []float64{0, 0, 0, 0}, false); o.Verdict != Fail {
		t.Errorf("eventually expired: %v", o)
	}
	// Truncated before the window closes: inconclusive.
	if o := series(a, 1, []float64{0, 0}, true); o.Verdict != Unknown {
		t.Errorf("eventually truncated inside window must be unknown: %v", o)
	}
	// Run (untruncated) shorter than the window: also unresolved.
	if o := series(a, 1, []float64{0, 0}, false); o.Verdict != Unknown {
		t.Errorf("eventually short run must be unknown: %v", o)
	}
	// A pass decided in the prefix survives truncation.
	if o := series(a, 1, []float64{0, 2}, true); o.Verdict != Pass {
		t.Errorf("eventually satisfied prefix must pass despite truncation: %v", o)
	}
}

func TestRecurrenceSemantics(t *testing.T) {
	a := mustParse(t, "recurrence v(y) > 0 every 2.5")
	if o := series(a, 1, []float64{1, 0, 1, 0, 1, 0, 1}, false); o.Verdict != Pass {
		t.Errorf("recurrence holds: %v", o)
	}
	if o := series(a, 1, []float64{1, 0, 0, 0, 1}, false); o.Verdict != Fail {
		t.Errorf("recurrence gap of 3 > 2.5 must fail: %v", o)
	}
	// The initial window counts: never holding fails once the span exceeds
	// the window.
	if o := series(a, 1, []float64{0, 0, 0, 0}, false); o.Verdict != Fail {
		t.Errorf("recurrence never holding: %v", o)
	}
	// Truncation leaves pending windows open.
	if o := series(a, 1, []float64{1, 0, 0}, true); o.Verdict != Unknown {
		t.Errorf("recurrence truncated must be unknown: %v", o)
	}
	// An observed gap is conclusive regardless of truncation.
	if o := series(a, 1, []float64{1, 0, 0, 0, 0}, true); o.Verdict != Fail {
		t.Errorf("recurrence observed gap must fail despite truncation: %v", o)
	}
	// Span shorter than the window resolves nothing.
	if o := series(a, 1, []float64{0, 0}, false); o.Verdict != Unknown {
		t.Errorf("recurrence short span must be unknown: %v", o)
	}
}

func TestMissingSignalIsUnknown(t *testing.T) {
	a := mustParse(t, "always v(nosuch) <= 1")
	m := NewMonitor(a)
	m.Step(0, func(string) (float64, bool) { return 0, false })
	m.Step(1, func(string) (float64, bool) { return 0, false })
	if o := m.Finish(false); o.Verdict != Unknown {
		t.Errorf("missing signal must be unknown, got %v", o)
	}
}

func TestNoSamplesIsUnknown(t *testing.T) {
	a := mustParse(t, "always v(y) <= 1")
	if o := NewMonitor(a).Finish(false); o.Verdict != Unknown {
		t.Errorf("empty trace must be unknown, got %v", o)
	}
}

func TestCheckSampledMatchesStreaming(t *testing.T) {
	as := []*Assertion{
		mustParse(t, "always v(y) <= 10"),
		mustParse(t, "eventually v(y) > 3 within 4"),
		mustParse(t, "recurrence v(y) < 1 every 3"),
	}
	vals := []float64{0, 2, 4, 0, 5, 0}
	time := make([]float64, len(vals))
	for i := range time {
		time[i] = float64(i)
	}
	for _, truncated := range []bool{false, true} {
		offline := CheckSampled(as, time, func(_ string, i int) (float64, bool) { return vals[i], true }, truncated)
		for i, a := range as {
			if got := series(a, 1, vals, truncated); got.Verdict != offline[i].Verdict {
				t.Errorf("truncated=%v assertion %d: streaming %v, offline %v",
					truncated, i, got.Verdict, offline[i].Verdict)
			}
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, text := range []string{
		"always v(a) >= -1",
		"eventually abs(v(a)) > 1.5 within 0.001",
		"recurrence v(a) > 0 every 0.01",
	} {
		a := mustParse(t, text)
		b, err := Parse(a.String())
		if err != nil {
			t.Errorf("reparse of %q -> %q: %v", text, a.String(), err)
			continue
		}
		if a.Form != b.Form || a.Window != b.Window || a.Pred.String() != b.Pred.String() {
			t.Errorf("round trip of %q changed: %q vs %q", text, a.String(), b.String())
		}
	}
}

package compile

import (
	"fmt"

	"vase/internal/ast"
	"vase/internal/token"
	"vase/internal/vhif"
)

// compileProcess translates a process statement into (a) an FSM recording
// its event-driven structure, states grouped for maximal concurrency, and
// (b) the analog realization of its control behavior: comparator and
// Schmitt-trigger blocks driving control nets for every signal the process
// computes.
func (c *compiler) compileProcess(p *ast.Process) {
	name := p.Label
	if name == "" {
		name = fmt.Sprintf("proc%d", len(c.m.FSMs)+1)
	}
	fsm := vhif.NewFSM(name)

	// Resume guard: logical OR of the sensitivity events ("as we assumed
	// that only one event occurs at a time, no special arbitration of
	// events is required").
	var resume vhif.DExpr
	for _, e := range p.Sensitivity {
		ev := c.toDExpr(e)
		if resume == nil {
			resume = ev
		} else {
			resume = &vhif.DBinary{Op: "or", X: resume, Y: ev}
		}
	}

	b := &fsmBuilder{c: c, fsm: fsm}
	entry := fsm.NewState("")
	fsm.AddArc(fsm.Start, entry, resume)
	exits := b.buildSeq(p.Body, entry)
	for _, s := range exits {
		fsm.AddArc(s, fsm.Start, nil)
	}
	c.m.FSMs = append(c.m.FSMs, fsm)

	c.extractControls(p)
}

// fsmBuilder constructs FSM states from sequential statements. Successive
// statements share a state until a data dependency (a read of a name
// assigned in the current state, or a second write to the same target)
// forces a new one. If statements branch via guarded arcs.
type fsmBuilder struct {
	c   *compiler
	fsm *vhif.FSM
}

// buildSeq fills states starting at entry and returns the exit states.
func (b *fsmBuilder) buildSeq(ss []ast.SeqStmt, entry *vhif.State) []*vhif.State {
	cur := entry
	assigned := map[string]bool{}
	for idx, st := range ss {
		switch st := st.(type) {
		case *ast.Assign:
			expr := b.c.toDExpr(st.RHS)
			target := targetName(st.LHS)
			if b.readsAssigned(st.RHS, assigned) || assigned[target] {
				next := b.fsm.NewState("")
				b.fsm.AddArc(cur, next, nil)
				cur = next
				assigned = map[string]bool{}
			}
			cur.Ops = append(cur.Ops, &vhif.DataOp{Target: target, SignalOp: st.SignalOp, Expr: expr})
			assigned[target] = true
		case *ast.IfStmt:
			exits := b.buildIf(st, cur, idx == len(ss)-1)
			if idx == len(ss)-1 {
				return exits
			}
			cur = exits[0]
			assigned = map[string]bool{}
		case *ast.NullStmt:
		default:
			b.c.errorf(st.Span(), "statement is not synthesizable in a VASS process")
		}
	}
	return []*vhif.State{cur}
}

// buildIf creates guarded branch states for an if statement. When the if is
// the last statement of its sequence (isLast), the branch exits are returned
// directly; otherwise the branches merge into a fresh join state.
func (b *fsmBuilder) buildIf(st *ast.IfStmt, from *vhif.State, isLast bool) []*vhif.State {
	type armT struct {
		cond vhif.DExpr // nil for else
		body []ast.SeqStmt
	}
	arms := []armT{{cond: b.c.toDExpr(st.Cond), body: st.Then}}
	for _, e := range st.Elifs {
		arms = append(arms, armT{cond: b.c.toDExpr(e.Cond), body: e.Then})
	}
	arms = append(arms, armT{cond: nil, body: st.Else})

	var join *vhif.State
	var exits []*vhif.State
	ensureJoin := func() *vhif.State {
		if join == nil {
			join = b.fsm.NewState("")
		}
		return join
	}
	for i, arm := range arms {
		cond := arm.cond
		if cond == nil && i == len(arms)-1 && len(arms) == 2 {
			// Plain if/else: show the complementary guard explicitly.
			cond = &vhif.DUnary{Op: "not", X: arms[0].cond}
		}
		if len(arm.body) == 0 {
			if isLast {
				// Guarded transition straight back to suspension.
				exits = append(exits, from)
			} else {
				b.fsm.AddArc(from, ensureJoin(), cond)
			}
			continue
		}
		armEntry := b.fsm.NewState("")
		b.fsm.AddArc(from, armEntry, cond)
		armExits := b.buildSeq(arm.body, armEntry)
		if isLast {
			exits = append(exits, armExits...)
		} else {
			for _, exit := range armExits {
				b.fsm.AddArc(exit, ensureJoin(), nil)
			}
		}
	}
	if isLast {
		return dedupeStates(exits)
	}
	return []*vhif.State{ensureJoin()}
}

func dedupeStates(ss []*vhif.State) []*vhif.State {
	seen := map[*vhif.State]bool{}
	var out []*vhif.State
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func (b *fsmBuilder) readsAssigned(e ast.Expr, assigned map[string]bool) bool {
	found := false
	ast.Walk(e, func(n ast.Node) bool {
		if nm, ok := n.(*ast.Name); ok && assigned[nm.Ident.Canon] {
			found = true
		}
		return !found
	})
	return found
}

func targetName(e ast.Expr) string {
	if nm, ok := unparen(e).(*ast.Name); ok {
		return nm.Ident.Canon
	}
	return "<target>"
}

// toDExpr converts an AST expression into an FSM datapath expression,
// simplifying trivial boolean tests (x = true -> x, x = '0' -> not x).
func (c *compiler) toDExpr(e ast.Expr) vhif.DExpr {
	switch e := e.(type) {
	case *ast.Paren:
		return c.toDExpr(e.X)
	case *ast.IntLit:
		return &vhif.DConst{Value: float64(e.Value)}
	case *ast.RealLit:
		return &vhif.DConst{Value: e.Value}
	case *ast.BitLit:
		v := 0.0
		if e.Value {
			v = 1
		}
		return &vhif.DConst{Value: v, Bit: true}
	case *ast.Name:
		switch e.Ident.Canon {
		case "true":
			return &vhif.DConst{Value: 1, Bit: true}
		case "false":
			return &vhif.DConst{Value: 0, Bit: true}
		}
		return &vhif.DName{Name: e.Ident.Canon}
	case *ast.Unary:
		op := e.Op.String()
		if e.Op == token.NOT {
			op = "not"
		}
		return &vhif.DUnary{Op: op, X: c.toDExpr(e.X)}
	case *ast.Binary:
		// Simplify boolean literal comparisons.
		if _, isTrue, ok := boolLiteral(e.Y); ok && (e.Op == token.EQ || e.Op == token.NEQ) {
			inner := c.toDExpr(e.X)
			if (e.Op == token.EQ) != isTrue {
				return &vhif.DUnary{Op: "not", X: inner}
			}
			return inner
		}
		return &vhif.DBinary{Op: e.Op.String(), X: c.toDExpr(e.X), Y: c.toDExpr(e.Y)}
	case *ast.Call:
		d := &vhif.DCall{Fun: e.Fun.Canon}
		for _, a := range e.Args {
			d.Args = append(d.Args, c.toDExpr(a))
		}
		return d
	case *ast.Attribute:
		switch e.Attr {
		case "above":
			if nm, ok := unparen(e.X).(*ast.Name); ok && len(e.Args) == 1 {
				th, _ := c.constValue(e.Args[0])
				return &vhif.DEvent{Quantity: nm.Ident.Canon, Threshold: th}
			}
		case "event":
			if nm, ok := unparen(e.X).(*ast.Name); ok {
				return &vhif.DPortEvent{Port: nm.Ident.Canon}
			}
		}
	}
	c.errorf(e.Span(), "expression is not representable in an FSM datapath")
	return &vhif.DConst{Value: 0}
}

// ---------------------------------------------------------------------------
// Control extraction
//
// "For analog systems, the FSM has very often a simple structure, that can
// be entirely mapped to analog circuits, i.e. Schmitt triggers, zero-cross
// detectors, sample-and-hold circuits."  The patterns below recognize those
// structures and materialize them as comparator/Schmitt blocks.

// extractControls derives a control net for every signal the process
// assigns.
func (c *compiler) extractControls(p *ast.Process) {
	// Alias assignments (s <= other or s <= not other) may refer to signals
	// extracted later in the body; iterate to a fixed point.
	type pendingT struct {
		st  *ast.Assign
		sig string
	}
	var pending []pendingT
	var samples []*ast.Assign

	for _, st := range p.Body {
		switch st := st.(type) {
		case *ast.Assign:
			if !st.SignalOp {
				continue
			}
			sig := targetName(st.LHS)
			if sym := c.d.Lookup(sig); sym != nil && sym.Type.IsNature() {
				// A nature-typed signal assigned on process events is a
				// sample-and-hold; realized after the process's bit
				// controls so its strobe can reuse their detector.
				samples = append(samples, st)
				continue
			}
			if net := c.extractAssignControl(p, sig, st.RHS); net != nil {
				c.bindControl(sig, net)
			} else {
				pending = append(pending, pendingT{st: st, sig: sig})
			}
		case *ast.IfStmt:
			c.extractIfControls(p, st)
		}
	}
	// Prefer a detector this process already computes as the sampling
	// strobe; otherwise a dedicated comparator is built from the first
	// sensitivity event.
	var procCtrl *vhif.Net
	for _, st := range p.Body {
		if as, ok := st.(*ast.Assign); ok && as.SignalOp {
			if net := c.ctrl[targetName(as.LHS)]; net != nil && net.Driver != nil && net.Driver.FromFSM {
				procCtrl = net
				break
			}
		}
	}
	for _, st := range samples {
		c.sampleSignal(p, targetName(st.LHS), st.RHS, procCtrl)
	}
	for pass := 0; pass < 2; pass++ {
		var still []pendingT
		for _, pd := range pending {
			if net := c.extractAssignControl(p, pd.sig, pd.st.RHS); net != nil {
				c.bindControl(pd.sig, net)
			} else {
				still = append(still, pd)
			}
		}
		pending = still
	}
	for _, pd := range pending {
		c.errorf(pd.st.SpanV, "cannot realize the control for signal %q with analog circuits (comparator/Schmitt patterns)", pd.sig)
	}
}

func (c *compiler) bindControl(sig string, net *vhif.Net) {
	c.ctrl[sig] = net
	c.m.Controls = append(c.m.Controls, &vhif.ControlLink{Signal: sig, Net: net})
}

// extractAssignControl handles direct forms:
//
//	s <= '0' / '1'            -> constant (static) control level
//	s <= q'above(th)          -> comparator
//	s <= q  (nature signal)   -> sample-and-hold on the process events
//	s <= other / not other    -> alias / inverted alias
//	s <= not s  (with two threshold events on one quantity) -> Schmitt
func (c *compiler) extractAssignControl(p *ast.Process, sig string, rhs ast.Expr) *vhif.Net {
	rhs = unparen(rhs)
	if _, isTrue, ok := boolLiteral(rhs); ok {
		return c.constControl(isTrue)
	}
	switch rhs := rhs.(type) {
	case *ast.Attribute:
		if rhs.Attr == "above" {
			return c.fsmComparator(rhs, sig+"_det", false)
		}
	case *ast.Name:
		if net := c.ctrl[rhs.Ident.Canon]; net != nil {
			return net
		}
	case *ast.Unary:
		if rhs.Op == token.NOT {
			inner := unparen(rhs.X)
			if nm, ok := inner.(*ast.Name); ok {
				if nm.Ident.Canon == sig {
					// Toggle: s <= not s. With two threshold events on one
					// quantity this is exactly a Schmitt trigger.
					return c.schmittFromSensitivity(p, sig)
				}
				if net := c.ctrl[nm.Ident.Canon]; net != nil {
					return c.invertCtrl(net)
				}
			}
			if at, ok := inner.(*ast.Attribute); ok && at.Attr == "above" {
				return c.fsmComparator(at, sig+"_det", true)
			}
		}
	}
	return nil
}

// extractIfControls handles the branching forms:
//
//	if EV then s <= '1'; else s <= '0';          -> comparator (zero-cross)
//	if EVhi then s <= b; elsif not EVlo then s <= not b; -> Schmitt trigger
func (c *compiler) extractIfControls(p *ast.Process, st *ast.IfStmt) {
	// Schmitt form first: if/elsif with threshold events on one quantity.
	if len(st.Elifs) == 1 && len(st.Else) == 0 {
		c.extractSchmittIf(st)
		return
	}
	if len(st.Elifs) > 0 {
		c.errorf(st.SpanV, "process if/elsif control structure is not a recognizable analog pattern")
		return
	}
	thenAssigns := constBitAssigns(st.Then)
	elseAssigns := constBitAssigns(st.Else)
	for _, sig := range sortedNames(thenAssigns) {
		thenBit := thenAssigns[sig]
		elseBit, ok := elseAssigns[sig]
		if ok && thenBit == elseBit {
			// The signal takes the same constant either way: a static
			// control level, no datapath element required.
			c.bindControl(sig, c.constControl(thenBit))
			continue
		}
		if !ok {
			c.errorf(st.SpanV, "signal %q must be assigned complementary constants in both branches", sig)
			continue
		}
		net := c.processCondCtrl(st.Cond, sig)
		if net == nil {
			continue
		}
		if !thenBit {
			net = c.invertCtrl(net)
		}
		c.bindControl(sig, net)
	}
}

// constControl returns a control net tied to a static level: the analog
// realization of a signal that only ever takes one value. One source block
// per level serves the whole design.
func (c *compiler) constControl(level bool) *vhif.Net {
	if n, ok := c.ctrlConsts[level]; ok {
		return n
	}
	v := 0.0
	if level {
		v = 1
	}
	b := c.g.AddBlock(vhif.BConst, fmt.Sprintf("ctl_%g", v))
	b.Param = v
	b.Out.Control = true
	c.ctrlConsts[level] = b.Out
	return b.Out
}

// sampleSignal realizes "s <= q" for a nature-typed signal s: a
// sample-and-hold latching the quantity value when the process resumes. Its
// control net is the process's primary detector (or the first sensitivity
// event's comparator when the process computes no bit control).
func (c *compiler) sampleSignal(p *ast.Process, sig string, rhs ast.Expr, procCtrl *vhif.Net) {
	in := c.compileExpr(c.baseEnv(), rhs)
	ctrl := procCtrl
	if ctrl == nil {
		ctrl = c.processEventCtrl(p, sig)
	}
	if ctrl == nil {
		return
	}
	sh := c.g.AddBlock(vhif.BSampleHold, sig, in)
	sh.SetCtrl(c.g, ctrl)
	sh.FromFSM = true
	sh.Out.Name = sig
	c.nets[sig] = sh.Out
}

// processEventCtrl derives a control net from the process's sensitivity
// list: a comparator on the first 'above event.
func (c *compiler) processEventCtrl(p *ast.Process, sig string) *vhif.Net {
	for _, s := range p.Sensitivity {
		if at, ok := unparen(s).(*ast.Attribute); ok && at.Attr == "above" {
			return c.fsmComparator(at, sig+"_smp", false)
		}
	}
	c.errorf(p.SpanV, "cannot derive a sampling control for signal %q (no 'above event in the sensitivity list)", sig)
	return nil
}

// extractSchmittIf recognizes
//
//	if q'above(hi) then s <= b1; elsif (q'above(lo) = false) then s <= b2;
//
// with b1 /= b2 as a Schmitt trigger centered between the thresholds.
func (c *compiler) extractSchmittIf(st *ast.IfStmt) {
	hiEv, hiOK := c.aboveEvent(st.Cond, false)
	loEv, loOK := c.aboveEvent(st.Elifs[0].Cond, true)
	if !hiOK || !loOK || hiEv.quantity != loEv.quantity {
		c.errorf(st.SpanV, "if/elsif control requires two 'above events on the same quantity")
		return
	}
	thenAssigns := constBitAssigns(st.Then)
	elifAssigns := constBitAssigns(st.Elifs[0].Then)
	for sig, b1 := range thenAssigns {
		b2, ok := elifAssigns[sig]
		if !ok || b1 == b2 {
			c.errorf(st.SpanV, "signal %q must take complementary values at the two thresholds", sig)
			continue
		}
		hi, lo := hiEv.threshold, loEv.threshold
		if hi < lo {
			hi, lo = lo, hi
		}
		blk := c.g.AddBlock(vhif.BSchmitt, sig+"_st", c.quantityNet(hiEv.nameExpr))
		blk.Param = (hi + lo) / 2
		blk.Hyst = (hi - lo) / 2
		blk.FromFSM = true
		net := blk.Out
		if !b1 { // output true above the upper threshold assigns '0'
			net = c.invertCtrl(net)
		}
		c.bindControl(sig, net)
	}
}

// schmittFromSensitivity realizes a toggle process (s <= not s) whose
// sensitivity list holds two threshold events on one quantity.
func (c *compiler) schmittFromSensitivity(p *ast.Process, sig string) *vhif.Net {
	type ev struct {
		q  ast.Expr
		th float64
	}
	var evs []ev
	for _, s := range p.Sensitivity {
		at, ok := unparen(s).(*ast.Attribute)
		if !ok || at.Attr != "above" || len(at.Args) != 1 {
			return nil
		}
		th, ok := c.constValue(at.Args[0])
		if !ok {
			return nil
		}
		evs = append(evs, ev{q: at.X, th: th})
	}
	if len(evs) != 2 {
		return nil
	}
	n1, ok1 := unparen(evs[0].q).(*ast.Name)
	n2, ok2 := unparen(evs[1].q).(*ast.Name)
	if !ok1 || !ok2 || n1.Ident.Canon != n2.Ident.Canon {
		return nil
	}
	hi, lo := evs[0].th, evs[1].th
	if hi < lo {
		hi, lo = lo, hi
	}
	blk := c.g.AddBlock(vhif.BSchmitt, sig+"_st", c.quantityNet(evs[0].q))
	blk.Param = (hi + lo) / 2
	blk.Hyst = (hi - lo) / 2
	blk.FromFSM = true
	// The toggle flips on each crossing; the Schmitt output is high above
	// the upper threshold, so the toggled signal is its complement when it
	// starts high on a rising input.
	return c.invertCtrl(blk.Out)
}

// processCondCtrl realizes an if condition of a process as a control net,
// tagging the produced comparator as FSM datapath.
func (c *compiler) processCondCtrl(cond ast.Expr, sig string) *vhif.Net {
	cond = unparen(cond)
	// c = '1' / = true / inverted forms over an 'above event or a signal.
	if bin, ok := cond.(*ast.Binary); ok {
		if _, isTrue, ok := boolLiteral(bin.Y); ok && (bin.Op == token.EQ || bin.Op == token.NEQ) {
			net := c.processCondCtrl(bin.X, sig)
			if net != nil && (bin.Op == token.EQ) != isTrue {
				net = c.invertCtrl(net)
			}
			return net
		}
	}
	if un, ok := cond.(*ast.Unary); ok && un.Op == token.NOT {
		if net := c.processCondCtrl(un.X, sig); net != nil {
			return c.invertCtrl(net)
		}
		return nil
	}
	if at, ok := cond.(*ast.Attribute); ok && at.Attr == "above" {
		return c.fsmComparator(at, sig+"_det", false)
	}
	if nm, ok := cond.(*ast.Name); ok {
		if net := c.ctrl[nm.Ident.Canon]; net != nil {
			return net
		}
	}
	c.errorf(cond.Span(), "process condition cannot be realized with a comparator")
	return nil
}

// fsmComparator materializes q'above(th) as a zero-cross detector /
// comparator with a small hysteresis margin ("so that repeated switchings
// between states are avoided").
func (c *compiler) fsmComparator(at *ast.Attribute, name string, invert bool) *vhif.Net {
	th := 0.0
	if len(at.Args) == 1 {
		v, ok := c.constValue(at.Args[0])
		if !ok {
			c.errorf(at.Args[0].Span(), "'above threshold must be static")
		}
		th = v
	}
	blk := c.g.AddBlock(vhif.BComparator, name, c.quantityNet(at.X))
	blk.Param = th
	blk.Hyst = DefaultHysteresis
	blk.FromFSM = true
	if invert {
		return c.invertCtrl(blk.Out)
	}
	return blk.Out
}

// quantityNet resolves the net of a quantity-name expression.
func (c *compiler) quantityNet(e ast.Expr) *vhif.Net {
	nm, ok := unparen(e).(*ast.Name)
	if !ok {
		c.errorf(e.Span(), "'above prefix must be a quantity name")
		return c.constNet(0)
	}
	n := c.nets[nm.Ident.Canon]
	if n == nil {
		c.errorf(e.Span(), "quantity %q is not available to the event-driven part (only inputs and integrator states are)", nm.Ident.Name)
		return c.constNet(0)
	}
	return n
}

// aboveEventInfo describes one recognized 'above event.
type aboveEventInfo struct {
	nameExpr  ast.Expr
	quantity  string
	threshold float64
}

// aboveEvent recognizes q'above(th) conditions with static thresholds. With
// negated true, it accepts the "event is false" forms (not EV, EV = false).
func (c *compiler) aboveEvent(cond ast.Expr, negated bool) (aboveEventInfo, bool) {
	cond = unparen(cond)
	if negated {
		if un, ok := cond.(*ast.Unary); ok && un.Op == token.NOT {
			return c.aboveEvent(un.X, false)
		}
		if bin, ok := cond.(*ast.Binary); ok && bin.Op == token.EQ {
			if _, isTrue, ok := boolLiteral(bin.Y); ok && !isTrue {
				return c.aboveEvent(bin.X, false)
			}
		}
		return aboveEventInfo{}, false
	}
	if bin, ok := cond.(*ast.Binary); ok && bin.Op == token.EQ {
		if _, isTrue, ok := boolLiteral(bin.Y); ok && isTrue {
			return c.aboveEvent(bin.X, false)
		}
	}
	at, ok := cond.(*ast.Attribute)
	if !ok || at.Attr != "above" || len(at.Args) != 1 {
		return aboveEventInfo{}, false
	}
	nm, ok := unparen(at.X).(*ast.Name)
	if !ok {
		return aboveEventInfo{}, false
	}
	th, ok := c.constValue(at.Args[0])
	if !ok {
		return aboveEventInfo{}, false
	}
	return aboveEventInfo{nameExpr: at.X, quantity: nm.Ident.Canon, threshold: th}, true
}

// constBitAssigns collects "sig <= '0'/'1'" assignments from a statement
// list.
func constBitAssigns(ss []ast.SeqStmt) map[string]bool {
	out := map[string]bool{}
	for _, st := range ss {
		if as, ok := st.(*ast.Assign); ok && as.SignalOp {
			if _, isTrue, ok := boolLiteral(as.RHS); ok {
				out[targetName(as.LHS)] = isTrue
			}
		}
	}
	return out
}

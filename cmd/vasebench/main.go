// Command vasebench regenerates the evaluation artifacts of the DATE'99
// paper: Table 1 (the five benchmark applications) and Figures 3, 4, 6, 7
// and 8.
//
// Usage:
//
//	vasebench            # everything
//	vasebench -table1
//	vasebench -fig8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"vase/internal/corpus"
	"vase/internal/diag"
	"vase/internal/exitcode"
	"vase/internal/mapper"
	"vase/internal/pipeline"
	"vase/internal/solveropt"
	"vase/internal/source"
)

func main() {
	table1 := flag.Bool("table1", false, "reproduce Table 1")
	fig3 := flag.Bool("fig3", false, "reproduce Figure 3 (VASS to VHIF translation)")
	fig4 := flag.Bool("fig4", false, "reproduce Figure 4 (while-loop translation)")
	fig6 := flag.Bool("fig6", false, "reproduce Figure 6 (branch-and-bound decision tree)")
	fig7 := flag.Bool("fig7", false, "reproduce Figure 7 (receiver synthesis)")
	fig8 := flag.Bool("fig8", false, "reproduce Figure 8 (receiver circuit simulation)")
	workers := flag.Int("workers", 0, "parallel search workers for Table 1 (0 = all CPUs, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "shared deadline for the Table 1 searches; expired entries use the best netlist found so far (0 = none)")
	maxSteps := flag.Int("max-steps", 0, "per-application search node budget for Table 1 (0 = unlimited)")
	cacheDir := flag.String("cache-dir", "", "persist compile and synthesis artifacts in this directory (content-addressed, shareable across runs)")
	cacheStats := flag.Bool("cache-stats", false, "print the per-stage cache hit/miss table to stderr on exit")
	solver := solveropt.Exact
	flag.Var(solveropt.Flag{Tier: &solver}, "solver", solveropt.Usage+" (affects Figure 8)")
	flag.Parse()

	pipe, err := pipeline.New(pipeline.Options{CacheDir: *cacheDir})
	if err != nil {
		fail(err)
	}
	if *cacheStats {
		defer func() { fmt.Fprint(os.Stderr, pipe.Stats()) }()
	}

	all := !*table1 && !*fig3 && !*fig4 && !*fig6 && !*fig7 && !*fig8

	if *table1 || all {
		section("Table 1 — behavioral synthesis results for 5 real-life applications")
		opts := mapper.DefaultOptions()
		opts.Workers = *workers
		opts.MaxNodes = *maxSteps
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		builds, err := corpus.BuildAllIn(ctx, pipe, opts)
		if err != nil {
			fail(err)
		}
		fmt.Print(corpus.Table1(builds))
		for _, b := range builds {
			if b.Result.Nonoptimal {
				fmt.Printf("note: %s search budget expired after %d nodes — result is the best incumbent, not a proven optimum\n",
					b.App.Key, b.Result.Stats.NodesVisited)
			}
		}
	}
	if *fig3 || all {
		section("Figure 3")
		_, text, err := corpus.Figure3()
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
	}
	if *fig4 || all {
		section("Figure 4")
		_, text, err := corpus.Figure4()
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
	}
	if *fig6 || all {
		section("Figure 6")
		_, text, err := corpus.Figure6()
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
	}
	if *fig7 || all {
		section("Figure 7")
		text, err := corpus.Figure7()
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
	}
	if *fig8 || all {
		section("Figure 8")
		_, text, err := corpus.Figure8With(corpus.SpiceConfig{Solver: solver.Mode()})
		if err != nil {
			fail(err)
		}
		fmt.Print(text)
	}
}

func section(title string) {
	fmt.Printf("\n==== %s ====\n\n", title)
}

// fail renders diagnostics with source excerpts and caret markers — every
// benchmark source is built in, so each finding's excerpt resolves from the
// corpus by file name. Non-diagnostic errors print plainly.
func fail(err error) {
	var dl diag.List
	if errors.As(err, &dl) {
		files := map[string]*source.File{}
		for _, app := range corpus.Applications() {
			name := app.Key + ".vhd"
			files[name] = source.NewFile(name, app.Source)
		}
		fmt.Fprint(os.Stderr, dl.RenderFiles(func(name string) *source.File { return files[name] }))
		os.Exit(exitcode.Error)
	}
	exitcode.Fail("vasebench", exitcode.Error, err)
}

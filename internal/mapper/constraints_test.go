package mapper

import (
	"strings"
	"testing"
)

func TestOpAmpConstraintSelectsSmallerMapping(t *testing.T) {
	// Unconstrained, the fig6 graph maps to 1 op amp already; constrain to
	// exactly that and confirm feasibility bookkeeping.
	opts := DefaultOptions()
	opts.MaxOpAmps = 1
	res := synth(t, buildFig6(), opts)
	if res.Netlist.OpAmpCount() != 1 {
		t.Errorf("op amps = %d, want 1", res.Netlist.OpAmpCount())
	}
}

func TestImpossibleConstraintFails(t *testing.T) {
	opts := DefaultOptions()
	opts.NoBounding = true // let the search see every mapping
	opts.MaxOpAmps = 0
	opts.MaxAreaUm2 = 1 // nothing fits in 1 um^2
	_, err := Synthesize(buildFig6(), opts)
	if err == nil || !strings.Contains(err.Error(), "no feasible mapping") {
		t.Fatalf("expected infeasibility, got %v", err)
	}
}

func TestPowerConstraintDiscardsMappings(t *testing.T) {
	m := compileReceiver(t)
	loose := DefaultOptions()
	res, err := Synthesize(m, loose)
	if err != nil {
		t.Fatalf("unconstrained: %v", err)
	}
	budget := res.Report.PowerMW

	tight := DefaultOptions()
	tight.NoBounding = true
	tight.MaxPowerMW = budget / 100
	if _, err := Synthesize(m, tight); err == nil {
		t.Fatal("a 100x power cut should be infeasible for the receiver")
	}

	ok := DefaultOptions()
	ok.MaxPowerMW = budget * 2
	res2, err := Synthesize(m, ok)
	if err != nil {
		t.Fatalf("feasible budget rejected: %v", err)
	}
	if res2.Report.PowerMW > ok.MaxPowerMW {
		t.Errorf("constraint violated: %g > %g", res2.Report.PowerMW, ok.MaxPowerMW)
	}
}

func TestInfeasibleStatsCounted(t *testing.T) {
	opts := DefaultOptions()
	opts.NoBounding = true
	opts.MaxOpAmps = 2 // forbid the costlier alternatives of fig6
	res := synth(t, buildFig6(), opts)
	if res.Stats.Infeasible == 0 {
		t.Error("no infeasible mappings recorded despite the op amp cap")
	}
	if res.Netlist.OpAmpCount() > 2 {
		t.Errorf("constraint violated: %d op amps", res.Netlist.OpAmpCount())
	}
}

func TestPowerObjective(t *testing.T) {
	// Minimizing power must yield a mapping whose power is <= the
	// area-optimal mapping's power, and both must be valid coverings.
	m := compileReceiver(t)
	areaOpt := DefaultOptions()
	ra, err := Synthesize(m, areaOpt)
	if err != nil {
		t.Fatalf("area objective: %v", err)
	}
	powerOpt := DefaultOptions()
	powerOpt.Objective = MinimizePower
	rp, err := Synthesize(m, powerOpt)
	if err != nil {
		t.Fatalf("power objective: %v", err)
	}
	if rp.Report.PowerMW > ra.Report.PowerMW+1e-9 {
		t.Errorf("power-optimal mapping uses more power (%.3f mW) than the area-optimal one (%.3f mW)",
			rp.Report.PowerMW, ra.Report.PowerMW)
	}
	if rp.Netlist.OpAmpCount() == 0 {
		t.Error("empty mapping")
	}
}

func TestPowerObjectivePreservesBehaviorStructure(t *testing.T) {
	// The covering is still complete: every synthesis under the power
	// objective produces the same component classes for fig6.
	opts := DefaultOptions()
	opts.Objective = MinimizePower
	res := synth(t, buildFig6(), opts)
	if res.Netlist.OpAmpCount() != 1 {
		t.Errorf("op amps = %d, want 1", res.Netlist.OpAmpCount())
	}
}

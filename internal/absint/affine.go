package absint

import (
	"math"

	"vase/internal/interval"
	"vase/internal/vhif"
)

// aff is an affine form a + b·s over a single state symbol s: for every
// time t and every state value s, the decomposed net's value lies in
// A + B·s. The coefficient intervals absorb everything that is not a
// linear function of s (other inputs, nonlinear terms), so the form is
// exact through gain/sum chains and degrades gracefully elsewhere.
type aff struct{ a, b interval.Interval }

func affConst(v interval.Interval) aff {
	return aff{a: v, b: interval.Point(0)}
}

// affineOf decomposes the value of net n into an affine form over the
// state symbol sym (a state element's output net). The recursion walks
// drivers through combinational blocks only — cycles pass exclusively
// through state elements, whose outputs (other than sym itself) are cut
// off at their current interval — so it terminates on any valid graph.
// ok=false means some contributing net is still at bottom.
func (an *analyzer) affineOf(n *vhif.Net, sym *vhif.Net) (aff, bool) {
	if n == sym {
		return aff{a: interval.Point(0), b: interval.Point(1)}, true
	}
	d := n.Driver
	if d == nil {
		if !an.def[n] {
			return aff{}, false
		}
		return affConst(an.vals[n]), true
	}
	switch d.Kind {
	case vhif.BGain:
		x, ok := an.affineOf(d.Inputs[0], sym)
		if !ok {
			return aff{}, false
		}
		k := interval.Point(d.Param)
		return aff{a: x.a.Mul(k), b: x.b.Mul(k)}, true
	case vhif.BNeg:
		x, ok := an.affineOf(d.Inputs[0], sym)
		if !ok {
			return aff{}, false
		}
		return aff{a: x.a.Neg(), b: x.b.Neg()}, true
	case vhif.BBuffer:
		return an.affineOf(d.Inputs[0], sym)
	case vhif.BAdd:
		acc := aff{a: interval.Point(0), b: interval.Point(0)}
		for _, in := range d.Inputs {
			x, ok := an.affineOf(in, sym)
			if !ok {
				return aff{}, false
			}
			acc = aff{a: acc.a.Add(x.a), b: acc.b.Add(x.b)}
		}
		return acc, true
	case vhif.BSub:
		x, ok := an.affineOf(d.Inputs[0], sym)
		if !ok {
			return aff{}, false
		}
		y, ok := an.affineOf(d.Inputs[1], sym)
		if !ok {
			return aff{}, false
		}
		return aff{a: x.a.Sub(y.a), b: x.b.Sub(y.b)}, true
	case vhif.BMul:
		// (a1 + b1·s)·c is affine when at most one factor depends on s;
		// the others contribute their interval hulls. A second
		// s-dependent factor collapses the whole product to its hull.
		acc := aff{a: interval.Point(1), b: interval.Point(0)}
		for _, in := range d.Inputs {
			x, ok := an.affineOf(in, sym)
			if !ok {
				return aff{}, false
			}
			accDep := acc.b != interval.Point(0)
			xDep := x.b != interval.Point(0)
			switch {
			case accDep && xDep:
				if !an.def[n] {
					return aff{}, false
				}
				return affConst(an.vals[n]), true
			case xDep:
				// acc is a pure interval: scale x by it.
				acc = aff{a: x.a.Mul(acc.a), b: x.b.Mul(acc.a)}
			default:
				acc = aff{a: acc.a.Mul(x.a), b: acc.b.Mul(x.a)}
			}
		}
		return acc, true
	}
	// Nonlinear or stateful: cut off at the net's current hull.
	if !an.def[n] {
		return aff{}, false
	}
	return affConst(an.vals[n]), true
}

// integratorBound bounds an integrator s with s(0) = 0 and s' equal to
// the input net, decomposed as s' in A + B·s:
//
//   - B < 0 strictly: the loop is a contraction; by the differential
//     inequality s can never leave the hull of {s(0)} and the
//     equilibrium set -A/B = A/(-B).
//   - B = {0} (drive independent of s): the integral is monotone in the
//     drive's sign — a one-sided or zero drive gives a half-bounded (or
//     zero) ramp; a sign-varying drive is unbounded.
//   - otherwise the feedback can be expansive: no finite bound is sound.
func (an *analyzer) integratorBound(b *vhif.Block) (interval.Interval, interval.Tri, bool) {
	x, ok := an.affineOf(b.Inputs[0], b.Out)
	if !ok {
		// Drive still at bottom: only the initial condition is known.
		return interval.Point(0), interval.Maybe, true
	}
	if x.b.Hi < 0 {
		if eq, ok := x.a.DivStrict(x.b.Neg()); ok {
			return eq.Hull(interval.Point(0)), interval.Maybe, true
		}
	}
	if x.b == interval.Point(0) {
		switch {
		case x.a == interval.Point(0):
			return interval.Point(0), interval.Maybe, true
		case x.a.Lo >= 0:
			return interval.Interval{Lo: 0, Hi: math.Inf(1)}, interval.Maybe, true
		case x.a.Hi <= 0:
			return interval.Interval{Lo: math.Inf(-1), Hi: 0}, interval.Maybe, true
		}
	}
	return interval.Top(), interval.Maybe, true
}

// filterBound bounds a BFilter. The low-pass realizes y' = wc·(u - y)
// with y(0) = 0: with u in A + B·y this is y' = wc·(A + (B-1)·y), a
// contraction whenever wc > 0 and B < 1, bounded by hull({0}, A/(1-B)).
// The band-pass biquad carries two states whose envelope depends on the
// (statically unknown) input spectrum; it stays unbounded.
func (an *analyzer) filterBound(b *vhif.Block) (interval.Interval, interval.Tri, bool) {
	if b.Param2 > 0 { // band-pass
		if _, ok := an.in(b, 0); !ok {
			return interval.Point(0), interval.Maybe, true
		}
		return interval.Top(), interval.Maybe, true
	}
	if b.Param <= 0 {
		// Non-positive corner: the lag is not contracting.
		return interval.Top(), interval.Maybe, true
	}
	x, ok := an.affineOf(b.Inputs[0], b.Out)
	if !ok {
		return interval.Point(0), interval.Maybe, true
	}
	bEff := x.b.Sub(interval.Point(1))
	if bEff.Hi < 0 {
		if eq, ok := x.a.DivStrict(bEff.Neg()); ok {
			return eq.Hull(interval.Point(0)), interval.Maybe, true
		}
	}
	return interval.Top(), interval.Maybe, true
}

// sampleHoldBound bounds a sample-and-hold: the output is always either
// the zero initial hold or a past input sample, so hull({0}, input) is
// sound whenever the input has a bound. For S/H iteration loops (the
// input depends on the S/H's own output) a discrete contraction
// refinement applies: with input in A + B·x and |B| < 1 the iteration
// x_{k+1} = a + b·x_k from x_0 = 0 stays inside ±|A|/(1-|B|).
func (an *analyzer) sampleHoldBound(b *vhif.Block) (interval.Interval, interval.Tri, bool) {
	in, inOK := an.in(b, 0)
	var plain interval.Interval
	havePlain := false
	if inOK {
		plain = in.Hull(interval.Point(0))
		havePlain = true
	}
	if x, ok := an.affineOf(b.Inputs[0], b.Out); ok {
		if bm := x.b.MaxAbs(); bm < 1 {
			m := x.a.MaxAbs() / (1 - bm)
			contr := interval.Interval{Lo: -m, Hi: m}
			if havePlain {
				if meet, ok := plain.Intersect(contr); ok {
					return meet, interval.Maybe, true
				}
			}
			return contr, interval.Maybe, true
		}
	}
	if havePlain {
		return plain, interval.Maybe, true
	}
	return interval.Point(0), interval.Maybe, true
}

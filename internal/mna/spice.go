package mna

import (
	"fmt"
	"sort"
	"strings"
)

// SpiceDeck renders the circuit as a SPICE-compatible deck. Op-amp
// macromodels emit a subcircuit with a saturating controlled source;
// behavioral elements and time-varying sources are emitted as commented
// placeholders for the user to bind.
func (c *Circuit) SpiceDeck(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s — synthesized by VASE\n", title)
	b.WriteString("* Op amp macromodel: saturating VCVS (gain/swing per instance).\n")
	b.WriteString(".subckt opamp out inp inn PARAMS: gain=1e4 vmax=4\n")
	b.WriteString("  B1 out 0 V = {vmax}*tanh({gain}*(V(inp)-V(inn))/{vmax})\n")
	b.WriteString(".ends\n\n")

	// Node names, most readable first.
	nodeName := make(map[Node]string, len(c.names))
	var names []string
	for name := range c.names {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := c.names[name]
		if _, ok := nodeName[n]; !ok || name != "0" {
			nodeName[n] = name
		}
	}
	nodeName[Ground] = "0"
	nn := func(n Node) string {
		if s, ok := nodeName[n]; ok {
			return s
		}
		return fmt.Sprintf("n%d", int(n))
	}

	rIdx, cIdx, vIdx, dIdx, sIdx, xIdx, bIdx := 0, 0, 0, 0, 0, 0, 0
	for _, d := range c.devices {
		switch d.kind {
		case dResistor:
			rIdx++
			fmt.Fprintf(&b, "R%d_%s %s %s %g\n", rIdx, sanitize(d.name), nn(d.a), nn(d.b), d.value)
		case dCapacitor:
			cIdx++
			fmt.Fprintf(&b, "C%d_%s %s %s %g IC=%g\n", cIdx, sanitize(d.name), nn(d.a), nn(d.b), d.value, d.ic)
		case dVSource:
			vIdx++
			fmt.Fprintf(&b, "V%d_%s %s %s DC %g  * time-varying in-program source\n",
				vIdx, sanitize(d.name), nn(d.a), nn(d.b), d.wave(0))
		case dISource:
			vIdx++
			fmt.Fprintf(&b, "I%d_%s %s %s DC %g\n", vIdx, sanitize(d.name), nn(d.a), nn(d.b), d.wave(0))
		case dVCVS:
			vIdx++
			fmt.Fprintf(&b, "E%d_%s %s %s %s %s %g\n", vIdx, sanitize(d.name),
				nn(d.a), nn(d.b), nn(d.cp), nn(d.cm), d.value)
		case dDiode:
			dIdx++
			fmt.Fprintf(&b, "D%d_%s %s %s DMOD\n", dIdx, sanitize(d.name), nn(d.a), nn(d.b))
		case dSwitch:
			sIdx++
			fmt.Fprintf(&b, "S%d_%s %s %s %s %s SWMOD  * ron=%g roff=%g vth=%g\n",
				sIdx, sanitize(d.name), nn(d.a), nn(d.b), nn(d.cp), nn(d.cm), d.ron, d.roff, d.vth)
		case dOpAmp:
			xIdx++
			fmt.Fprintf(&b, "X%d_%s %s %s %s opamp PARAMS: gain=%g vmax=%g\n",
				xIdx, sanitize(d.name), nn(d.a), nn(d.cp), nn(d.cm), d.gain, d.vmax)
		case dFunc:
			bIdx++
			var ins []string
			for _, n := range d.ctrl {
				ins = append(ins, "V("+nn(n)+")")
			}
			fmt.Fprintf(&b, "B%d_%s %s 0 V = f(%s)  * behavioral computational element\n",
				bIdx, sanitize(d.name), nn(d.a), strings.Join(ins, ", "))
		}
	}
	b.WriteString("\n.model DMOD D(IS=1e-14)\n")
	b.WriteString(".model SWMOD SW(RON=100 ROFF=1e9 VT=0)\n")
	b.WriteString(".end\n")
	return b.String()
}

func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		}
		return '_'
	}, name)
}

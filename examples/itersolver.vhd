entity iter_solver is
  port (quantity x : out real);
end entity;

architecture iterative of iter_solver is
  constant a0 : real := 1.0;
  signal xs : real;
  signal conv : bit;
begin
  x'dot == a0 - x - x'integ;
  process (x'above(0.5), x'above(0.4)) is begin
    conv <= x'above(0.5);
    xs <= x;
  end process;
end architecture;

package project

import (
	"context"
	"strings"
	"testing"

	"vase/internal/diag"
	"vase/internal/pipeline"
)

const pkgFile = `package consts is
  constant gain : real := 2.0;
end package consts;
`

const entFile = `entity amp is
  port (quantity vin : in real;
        quantity vout : out real);
end entity amp;
`

const archFile = `architecture behav of amp is
begin
  vout == gain * vin;
end architecture behav;
`

const otherFile = `entity att is
  port (quantity a : in real;
        quantity b : out real);
end entity att;

architecture behav of att is
begin
  b == a / gain;
end architecture behav;
`

func newProject(t *testing.T) *Project {
	t.Helper()
	pipe, err := pipeline.New(pipeline.Options{})
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	return New(pipe)
}

func files() []File {
	return []File{
		{Name: "consts.vhd", Text: pkgFile},
		{Name: "amp_ent.vhd", Text: entFile},
		{Name: "amp_arch.vhd", Text: archFile},
		{Name: "att.vhd", Text: otherFile},
	}
}

func TestCheckCleanProject(t *testing.T) {
	p := newProject(t)
	snap, err := p.Check(context.Background(), files())
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(snap.Diags) != 0 {
		t.Fatalf("diagnostics on clean project:\n%s", snap.Diags)
	}
	if snap.Partial {
		t.Fatalf("clean project marked Partial")
	}
	if len(snap.Units) != 2 {
		t.Fatalf("units = %d, want 2", len(snap.Units))
	}
	// Units come out in (file, architecture) order; the cross-file
	// amp/behav pair resolves the entity from amp_ent.vhd and the gain
	// constant from consts.vhd.
	if snap.Units[0].Entity != "amp" || snap.Units[0].File != "amp_arch.vhd" {
		t.Fatalf("unit 0 = %q in %q, want amp in amp_arch.vhd", snap.Units[0].Entity, snap.Units[0].File)
	}
	if snap.Units[1].Entity != "att" || snap.Units[1].File != "att.vhd" {
		t.Fatalf("unit 1 = %q in %q, want att in att.vhd", snap.Units[1].Entity, snap.Units[1].File)
	}
}

// TestCheckIncremental is the PR's incrementality acceptance test: editing
// one line of one architecture re-runs only that unit. Every other file's
// parse and every other unit's sema must be served from the cache.
func TestCheckIncremental(t *testing.T) {
	p := newProject(t)
	ctx := context.Background()
	if _, err := p.Check(ctx, files()); err != nil {
		t.Fatalf("first Check: %v", err)
	}
	before := p.pipe.Stats()

	edited := files()
	edited[2].Text = strings.Replace(edited[2].Text, "gain * vin", "gain * vin + 0.0", 1)
	snap, err := p.Check(ctx, edited)
	if err != nil {
		t.Fatalf("second Check: %v", err)
	}
	if len(snap.Diags) != 0 {
		t.Fatalf("diagnostics after edit:\n%s", snap.Diags)
	}

	// Three of four parses and one of two units reused.
	if snap.ReusedParses != 3 {
		t.Errorf("ReusedParses = %d, want 3", snap.ReusedParses)
	}
	if snap.ReusedUnits != 1 {
		t.Errorf("ReusedUnits = %d, want 1", snap.ReusedUnits)
	}
	for _, u := range snap.Units {
		want := u.Entity == "att"
		if u.Cached != want {
			t.Errorf("unit %s.%s Cached = %v, want %v", u.Entity, u.Arch, u.Cached, want)
		}
	}

	// The same shows up in the pipeline's own counters: exactly one new
	// parse miss (the edited file) and one new sema miss (its unit).
	after := p.pipe.Stats()
	if got := after.Stage(pipeline.StageParse).Misses - before.Stage(pipeline.StageParse).Misses; got != 1 {
		t.Errorf("new parse misses = %d, want 1", got)
	}
	if got := after.Stage(pipeline.StageSema).Misses - before.Stage(pipeline.StageSema).Misses; got != 1 {
		t.Errorf("new sema misses = %d, want 1", got)
	}
}

// TestCheckPackageEditInvalidatesUnits: touching a package file re-runs
// every unit, because the environment fingerprint is part of each unit key.
func TestCheckPackageEditInvalidatesUnits(t *testing.T) {
	p := newProject(t)
	ctx := context.Background()
	if _, err := p.Check(ctx, files()); err != nil {
		t.Fatalf("first Check: %v", err)
	}

	edited := files()
	edited[0].Text = strings.Replace(edited[0].Text, "2.0", "3.0", 1)
	snap, err := p.Check(ctx, edited)
	if err != nil {
		t.Fatalf("second Check: %v", err)
	}
	if snap.ReusedUnits != 0 {
		t.Errorf("ReusedUnits = %d, want 0 after package edit", snap.ReusedUnits)
	}
	if snap.ReusedParses != 3 {
		t.Errorf("ReusedParses = %d, want 3", snap.ReusedParses)
	}
}

func TestCheckBrokenFileIsPartial(t *testing.T) {
	p := newProject(t)
	broken := files()
	// Delete the semicolon after the first statement-ish line of the amp
	// architecture: the parser recovers, the project stays checkable.
	broken[2].Text = strings.Replace(broken[2].Text, "vout == gain * vin;", "vout == gain * ;", 1)
	snap, err := p.Check(context.Background(), broken)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !snap.Partial {
		t.Fatalf("broken project not marked Partial")
	}
	if len(snap.Units) != 2 {
		t.Fatalf("units = %d, want 2 (recovery keeps both units)", len(snap.Units))
	}
	var syntax int
	for _, d := range snap.Diags {
		if d.Code == diag.CodeSyntax {
			syntax++
		}
	}
	if syntax == 0 {
		t.Fatalf("no syntax diagnostics reported:\n%s", snap.Diags)
	}
	// The untouched att unit must still analyze cleanly.
	if got := snap.FileDiags("att.vhd"); len(got) != 0 {
		t.Fatalf("clean file picked up diagnostics:\n%s", got)
	}
}

func TestCheckUnknownEntity(t *testing.T) {
	p := newProject(t)
	snap, err := p.Check(context.Background(), []File{
		{Name: "orphan.vhd", Text: "architecture a of ghost is\nbegin\nend architecture a;\n"},
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(snap.Diags) != 1 || !strings.Contains(snap.Diags[0].Msg, "unknown entity") {
		t.Fatalf("diags = %v, want one unknown-entity error", snap.Diags)
	}
	if len(snap.Units) != 0 {
		t.Fatalf("units = %d, want 0", len(snap.Units))
	}
}

func TestCheckDuplicateEntity(t *testing.T) {
	p := newProject(t)
	ent := "entity dup is\n  port (quantity x : in real);\nend entity dup;\n"
	snap, err := p.Check(context.Background(), []File{
		{Name: "a.vhd", Text: ent},
		{Name: "b.vhd", Text: ent},
	})
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	var found bool
	for _, d := range snap.Diags {
		if d.Code == diag.CodeDuplicate && strings.Contains(d.Msg, "duplicate entity") {
			found = true
			if d.Pos.Filename != "b.vhd" {
				t.Errorf("duplicate reported in %q, want b.vhd", d.Pos.Filename)
			}
		}
	}
	if !found {
		t.Fatalf("no duplicate-entity diagnostic:\n%s", snap.Diags)
	}
}

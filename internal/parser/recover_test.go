// Recovery-contract tests: ParseCollect must be a total function from bytes
// to a structurally complete tree. The mutation suite damages every example
// source one token at a time (delete, duplicate) and checks that each
// mutant still yields a tree whose top-level unit spans tile every token,
// that sema runs over the recovered tree without cascading, and that the
// diagnostics are byte-stable (golden digest per file).
package parser_test

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/lexer"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/source"
	"vase/internal/token"
)

var update = flag.Bool("update", false, "rewrite the mutation golden file")

// scan tokenizes src the same way ParseCollect does, dropping EOF.
func scan(name, src string) []lexer.Token {
	var errs diag.List
	toks := lexer.ScanAll(source.NewFile(name, src), &errs)
	if n := len(toks); n > 0 && toks[n-1].Kind == token.EOF {
		toks = toks[:n-1]
	}
	return toks
}

// checkTiling asserts the structural-completeness invariant: every non-EOF
// token of the input is covered by the span of some top-level design unit.
func checkTiling(t *testing.T, label string, df *ast.DesignFile, src string) {
	t.Helper()
	if df == nil {
		t.Fatalf("%s: ParseCollect returned nil DesignFile", label)
	}
	toks := scan(df.File.Name(), src)
	for _, tok := range toks {
		covered := false
		for _, u := range df.Units {
			sp := u.Span()
			if sp.IsValid() && sp.Start <= tok.Span.Start && tok.Span.End <= sp.End {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("%s: token %s %q at [%d,%d) not covered by any unit span",
				label, tok.Kind, tok.Text, tok.Span.Start, tok.Span.End)
		}
	}
}

func exampleFiles(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.vhd"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no example sources found: %v", err)
	}
	sort.Strings(paths)
	return paths
}

// TestRecoverUnmutatedIdentity: on well-formed input the recovering parser
// is byte-identical to the strict parser — same tree (printed form), no
// diagnostics. This pins the refactor's "valid inputs unchanged" contract.
func TestRecoverUnmutatedIdentity(t *testing.T) {
	for _, path := range exampleFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(path)
		strict, err := parser.Parse(name, string(raw))
		if err != nil {
			t.Fatalf("%s: strict parse failed: %v", name, err)
		}
		recovered, errs := parser.ParseCollect(name, string(raw))
		if len(*errs) != 0 {
			t.Errorf("%s: recovering parse reported diagnostics on clean input:\n%s", name, errs)
		}
		if ast.HasErrors(recovered) {
			t.Errorf("%s: recovering parse left ERROR nodes in a clean tree", name)
		}
		if got, want := ast.FileString(recovered), ast.FileString(strict); got != want {
			t.Errorf("%s: recovered tree differs from strict tree:\n--- strict\n%s\n--- recovered\n%s", name, want, got)
		}
		checkTiling(t, name, recovered, string(raw))
	}
}

// mutate returns the source with token i deleted or duplicated.
func mutate(src string, tok lexer.Token, kind string) string {
	start, end := int(tok.Span.Start), int(tok.Span.End)
	switch kind {
	case "del":
		return src[:start] + src[end:]
	case "dup":
		return src[:end] + " " + src[start:end] + src[end:]
	}
	panic("unknown mutation " + kind)
}

// TestRecoverExamplesMutations is the mutation suite: for every example and
// every token, deleting or duplicating that token must still produce a
// structurally complete AST that sema can analyze, and the diagnostics for
// the whole campaign must match a golden digest (recovery behavior is part
// of the front end's stable contract, not an implementation detail).
func TestRecoverExamplesMutations(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation campaign is slow in -short mode")
	}
	var report strings.Builder
	for _, path := range exampleFiles(t) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		src := string(raw)
		name := filepath.Base(path)
		toks := scan(name, src)

		total, complete := 0, 0
		digest := sha256.New()
		for i, tok := range toks {
			for _, kind := range []string{"del", "dup"} {
				mutated := mutate(src, tok, kind)
				label := fmt.Sprintf("%s[%s:%d:%s]", name, kind, i, tok.Text)
				total++

				df, errs := parser.ParseCollect(name, mutated)
				checkTiling(t, label, df, mutated)
				// Sema over the recovered tree must not panic and not
				// cascade; its findings join the digest below.
				designs, semaErrs := sema.AnalyzeCollect(df)
				for _, d := range designs {
					if (len(*errs) > 0 || ast.HasErrors(df)) && !d.Partial {
						t.Errorf("%s: design %q not marked Partial despite recovery", label, d.Name)
					}
				}
				complete++

				// Diagnostics must be deterministic: digest the rendered
				// stream across the whole campaign.
				fmt.Fprintf(digest, "%s\n", label)
				for _, d := range *errs {
					fmt.Fprintf(digest, "P %s\n", d.Error())
				}
				for _, d := range *semaErrs {
					fmt.Fprintf(digest, "S %s\n", d.Error())
				}
				// Spot-check run-to-run stability on a sample.
				if i%17 == 0 && kind == "del" {
					_, errs2 := parser.ParseCollect(name, mutated)
					if errs.Error() != errs2.Error() {
						t.Errorf("%s: diagnostics differ between identical runs", label)
					}
				}
			}
		}
		if total == 0 {
			t.Fatalf("%s: no tokens to mutate", name)
		}
		pct := 100 * float64(complete) / float64(total)
		if pct < 95 {
			t.Errorf("%s: only %.1f%% of %d mutants produced a complete analyzed AST (want >= 95%%)", name, pct, total)
		}
		fmt.Fprintf(&report, "%s mutants=%d complete=%d digest=%s\n",
			name, total, complete, hex.EncodeToString(digest.Sum(nil)))
	}

	goldenPath := filepath.Join("testdata", "mutations.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(report.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if report.String() != string(want) {
		t.Errorf("mutation campaign drifted from golden (run with -update if intended):\n--- got\n%s--- want\n%s", report.String(), want)
	}
}

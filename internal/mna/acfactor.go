package mna

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
)

// This file is the complex-domain twin of plan.go/factor.go for the AC
// sweep. The small-signal system has the same sparsity pattern as the
// transient system (every device stamps the same positions), so the stamp
// plan's CSR structure and fill analysis are reused verbatim; only the
// value arrays become complex128.
//
// Frequency points differ only in the capacitor jωC terms, so the sweep
// assembles a frequency-independent template once (all conductances,
// operating-point linearizations and the unit stimulus, in device order)
// and each point copies it and adds the purely imaginary capacitor terms.
// Complex addition is componentwise and no accumulator in the assembly can
// hold a -0 component, so deferring the capacitor terms is bit-identical
// to the reference's interleaved assembly.

// errACSparseMiss signals that a complex elimination needed a slot outside
// the shared sparse pattern. The sweep workers must not grow the shared
// plan concurrently, so the point is re-solved on the worker's private
// dense fallback instead (bit-identical by the dense argument).
var errACSparseMiss = errors.New("mna: AC elimination fill outside sparse pattern")

// acTemplate is the frequency-independent part of the AC system.
type acTemplate struct {
	vals []complex128 // matrix template, same layout as solver.vals
	rhsv []complex128 // stimulus, by physical row (+ trash at dim)
	// capSlots/capC list the capacitor matrix slots (aa bb ab ba per
	// device, in device order) and values for the per-frequency jωC adds.
	capSlots []int
	capC     []float64
	// Dense twin of vals/capSlots, present when the plan is sparse: the
	// per-worker fallback for points whose complex pivot sequence walks
	// outside the adaptively grown pattern.
	dvals     []complex128
	capDSlots []int
}

// acWorkspace is one worker's private solve state for the parallel sweep.
type acWorkspace struct {
	vals, rhsv       []complex128
	dvals            []complex128 // dense fallback storage, lazily sized on first miss
	x                []complex128 // 1-based solution, x[0] = 0
	perm, pos, diagQ []int
}

func newACWorkspace(s *solver, t *acTemplate) *acWorkspace {
	ws := &acWorkspace{
		vals: make([]complex128, len(s.vals)),
		rhsv: make([]complex128, len(s.rhsv)),
		x:    make([]complex128, s.dim+1),
		perm: make([]int, s.dim),
	}
	if s.sparse {
		ws.pos = make([]int, s.dim)
		ws.diagQ = make([]int, s.dim)
	}
	return ws
}

// solvePoint solves one frequency point into ws.x: template copy plus jωC,
// then the in-place complex elimination, falling back to the private dense
// storage when the sparse pattern proves too small for this point.
func (ws *acWorkspace) solvePoint(s *solver, t *acTemplate, f float64) error {
	ws.load(t, f)
	if !s.sparse {
		return ws.denseFactorSolve(s.dim, ws.vals)
	}
	err := ws.sparseFactorSolve(s)
	if err == errACSparseMiss {
		return ws.denseFallback(s, t, f)
	}
	return err
}

// denseFallback re-solves a frequency point on the worker's private dense
// storage after a sparse pattern miss. The storage is sized on the first
// miss and reused for every later one — most sweeps never miss, so the
// common case carries no dense allocation at all, and a sweep that misses
// many points allocates exactly once per worker.
func (ws *acWorkspace) denseFallback(s *solver, t *acTemplate, f float64) error {
	if ws.dvals == nil {
		ws.dvals = make([]complex128, len(t.dvals))
	}
	ws.loadDense(t, f)
	return ws.denseFactorSolve(s.dim, ws.dvals)
}

// buildACTemplate assembles the frequency-independent complex system
// linearized at the operating point op, mirroring acSolve's device-order
// arithmetic exactly.
func (c *Circuit) buildACTemplate(s *solver, op Solution, acSource string) *acTemplate {
	t := &acTemplate{
		vals: make([]complex128, len(s.vals)),
		rhsv: make([]complex128, len(s.rhsv)),
	}
	v, rhs := t.vals, t.rhsv
	scratch := make([]float64, len(s.fnVals))
	dps := make([]float64, len(s.fnDps))
	for di, d := range c.devices {
		sl := s.slots[s.devOff[di]:]
		switch d.kind {
		case dResistor:
			g := complex(1/d.value, 0)
			v[sl[0]] += g
			v[sl[1]] += g
			v[sl[2]] -= g
			v[sl[3]] -= g
		case dCapacitor:
			t.capSlots = append(t.capSlots, sl[0], sl[1], sl[2], sl[3])
			t.capC = append(t.capC, d.value)
		case dVSource:
			stim := 0.0
			if d.name == acSource {
				stim = 1
			}
			v[sl[0]] += 1
			v[sl[1]] -= 1
			v[sl[2]] += 1
			v[sl[3]] -= 1
			rhs[sl[4]] += complex(stim, 0)
		case dISource:
			// Independent current sources are DC bias: no AC component.
		case dVCVS:
			v[sl[0]] += 1
			v[sl[1]] -= 1
			v[sl[2]] -= complex(d.value, 0)
			v[sl[3]] += complex(d.value, 0)
			v[sl[4]] += 1
			v[sl[5]] -= 1
		case dDiode:
			g, _ := d.diodeLinearize(op.V(d.a) - op.V(d.b))
			gc := complex(g, 0)
			v[sl[0]] += gc
			v[sl[1]] += gc
			v[sl[2]] -= gc
			v[sl[3]] -= gc
		case dSwitch:
			g := complex(1/d.switchR(op.V(d.cp)-op.V(d.cm)), 0)
			v[sl[0]] += g
			v[sl[1]] += g
			v[sl[2]] -= g
			v[sl[3]] -= g
		case dOpAmp:
			// Local gain at the operating point (no Newton limiting: the
			// AC linearization is a plain derivative, as in acSolve).
			vc := op.V(d.cp) - op.V(d.cm)
			arg := d.gain * vc / d.vmax
			sech := 1 / math.Cosh(arg)
			dg := complex(d.gain*sech*sech, 0)
			v[sl[0]] += 1
			v[sl[1]] -= dg
			v[sl[2]] += dg
			v[sl[4]] += 1
		case dFunc:
			nc := len(d.ctrl)
			v[sl[0]] += 1
			d.funcLinearize(op, scratch[:nc], dps[:nc])
			for i := 0; i < nc; i++ {
				v[sl[3+i]] -= complex(dps[i], 0)
			}
			v[sl[1]] += 1
		}
	}
	if s.sparse {
		// Dense twin for the per-worker fallback. Copying the finished
		// template is exact — each slot accumulated identically — and the
		// capacitor slot lists are rebuilt in the dense layout.
		dim := s.dim
		t.dvals = make([]complex128, dim*dim+1)
		for r := 0; r < dim; r++ {
			for q := s.rowPtr[r]; q < s.rowPtr[r+1]; q++ {
				t.dvals[r*dim+s.colIdx[q]] = t.vals[q]
			}
		}
		denseSlot := func(r, col int) int {
			if r == 0 || col == 0 {
				return dim * dim
			}
			return (r-1)*dim + (col - 1)
		}
		for _, d := range c.devices {
			if d.kind != dCapacitor {
				continue
			}
			a, b := int(d.a), int(d.b)
			t.capDSlots = append(t.capDSlots,
				denseSlot(a, a), denseSlot(b, b), denseSlot(a, b), denseSlot(b, a))
		}
	}
	return t
}

// loadDense prepares the dense fallback for frequency f: dense template
// copy, fresh stimulus (the sparse attempt partially eliminated ws.rhsv),
// and the capacitor terms in device order.
func (ws *acWorkspace) loadDense(t *acTemplate, f float64) {
	copy(ws.dvals, t.dvals)
	copy(ws.rhsv, t.rhsv)
	omega := 2 * math.Pi * f
	for i, cval := range t.capC {
		g := complex(0, omega*cval)
		sl := t.capDSlots[4*i:]
		ws.dvals[sl[0]] += g
		ws.dvals[sl[1]] += g
		ws.dvals[sl[2]] -= g
		ws.dvals[sl[3]] -= g
	}
}

// load copies the template into the workspace and adds the capacitor jωC
// terms for frequency f (in device order, matching the reference assembly).
func (ws *acWorkspace) load(t *acTemplate, f float64) {
	copy(ws.vals, t.vals)
	copy(ws.rhsv, t.rhsv)
	omega := 2 * math.Pi * f
	for i, cval := range t.capC {
		g := complex(0, omega*cval)
		sl := t.capSlots[4*i:]
		ws.vals[sl[0]] += g
		ws.vals[sl[1]] += g
		ws.vals[sl[2]] -= g
		ws.vals[sl[3]] -= g
	}
}

// denseFactorSolve runs the complex dense elimination over a in place,
// writing the solution into ws.x. The pivot rule is the reference acSolve
// rule: largest cmplx.Abs in logical row order, absolute 1e-15 singularity
// threshold.
func (ws *acWorkspace) denseFactorSolve(n int, a []complex128) error {
	rhs, perm := ws.rhsv, ws.perm
	for i := 0; i < n; i++ {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		p := col
		pv := cmplx.Abs(a[perm[p]*n+col])
		for r := col + 1; r < n; r++ {
			if av := cmplx.Abs(a[perm[r]*n+col]); av > pv {
				p, pv = r, av
			}
		}
		if pv < 1e-15 {
			return fmt.Errorf("singular AC matrix at column %d", col+1)
		}
		perm[col], perm[p] = perm[p], perm[col]
		pr := perm[col]
		piv := a[pr*n+col]
		prow := a[pr*n : pr*n+n]
		for r := col + 1; r < n; r++ {
			rr := perm[r]
			num := a[rr*n+col]
			if num == 0 {
				// fac = 0/piv = ±0: the reference skip, taken before the
				// (function-call) complex division.
				continue
			}
			fac := num / piv
			if fac == 0 {
				continue
			}
			row := a[rr*n : rr*n+n]
			for k := col; k < n; k++ {
				row[k] -= fac * prow[k]
			}
			rhs[rr] -= fac * rhs[pr]
		}
	}
	x := ws.x
	for r := n - 1; r >= 0; r-- {
		rr := perm[r]
		sum := rhs[rr]
		row := a[rr*n : rr*n+n]
		for k := r + 1; k < n; k++ {
			sum -= row[k] * x[k+1]
		}
		x[r+1] = sum / row[r]
	}
	x[0] = 0
	return nil
}

func (ws *acWorkspace) sparseFactorSolve(s *solver) error {
	n := s.dim
	ci, rp := s.colIdx, s.rowPtr
	cp, crow, cslot := s.colPtr, s.colRow, s.colSlot
	vals, rhs, perm, pos, diagQ := ws.vals, ws.rhsv, ws.perm, ws.pos, ws.diagQ
	for i := 0; i < n; i++ {
		perm[i] = i
		pos[i] = i
	}
	for col := 0; col < n; col++ {
		// Pivot: largest modulus among rows not yet eliminated, earliest
		// logical position on ties — acSolve's strict-> scan restricted to
		// the rows with a pattern entry at this column.
		p := -1
		plp := col
		pv := 0.0
		for k := cp[col]; k < cp[col+1]; k++ {
			rr := int(crow[k])
			lp := pos[rr]
			if lp < col {
				continue
			}
			av := cmplx.Abs(vals[cslot[k]])
			if av > pv || (av == pv && lp < plp) {
				p, plp, pv = k, lp, av
			}
		}
		if pv < 1e-15 {
			return fmt.Errorf("singular AC matrix at column %d", col+1)
		}
		pr := int(crow[p])
		other := perm[col]
		perm[col], perm[plp] = pr, other
		pos[pr], pos[other] = col, plp
		pq := int(cslot[p])
		diagQ[col] = pq
		pend := rp[pr+1]
		piv := vals[pq]
		for k := cp[col]; k < cp[col+1]; k++ {
			rr := int(crow[k])
			if pos[rr] <= col {
				continue
			}
			q := int(cslot[k])
			num := vals[q]
			if num == 0 {
				continue
			}
			fac := num / piv
			if fac == 0 {
				continue
			}
			end := rp[rr+1]
			w := q
			for pk := pq; pk < pend; pk++ {
				c2 := ci[pk]
				for w < end && ci[w] < c2 {
					w++
				}
				if w >= end || ci[w] != c2 {
					return errACSparseMiss
				}
				vals[w] -= fac * vals[pk]
			}
			rhs[rr] -= fac * rhs[pr]
		}
	}
	x := ws.x
	for r := n - 1; r >= 0; r-- {
		rr := perm[r]
		q := diagQ[r]
		sum := rhs[rr]
		for k := q + 1; k < rp[rr+1]; k++ {
			sum -= vals[k] * x[ci[k]+1]
		}
		x[r+1] = sum / vals[q]
	}
	x[0] = 0
	return nil
}

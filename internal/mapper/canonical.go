package mapper

import "fmt"

// Canonical returns a deterministic encoding of every option field that can
// change the synthesized netlist, for cache-key derivation (DESIGN.md §10).
//
// Four fields are deliberately excluded — Workers, Deadline, MaxNodes and
// Trace — because by the determinism contract (§7, §9) they cannot change a
// completed result: any worker count returns the byte-identical optimal
// netlist, and a deadline or node budget can only truncate the search,
// which tags the result Nonoptimal — and Nonoptimal results are never
// cached. Trace only annotates the run with a decision tree; traced runs
// bypass the cache entirely so the tree is always fresh.
//
// Every other field — including nested Process, System and Patterns
// options — is encoded. The reflection test in internal/pipeline
// (TestCacheKeySensitivity) enforces that any field added to Options in the
// future is either encoded here or consciously added to the exemption list.
func (o Options) Canonical() string {
	return fmt.Sprintf("obj=%d|proc{%s}|sys{%s}|pat{%s}|noseq=%t|nobound=%t|noshare=%t|firstfit=%t|strong=%t|maxarea=%g|maxpower=%g|maxopamps=%d",
		int(o.Objective), o.Process.Canonical(), o.System.Canonical(), o.Patterns.Canonical(),
		o.NoSequencing, o.NoBounding, o.NoSharing, o.FirstFit, o.StrongBound,
		o.MaxAreaUm2, o.MaxPowerMW, o.MaxOpAmps)
}

entity div_demo is
  port (
    quantity num : in real is voltage;
    quantity den : in real is voltage range -1.0 to 1.0;
    quantity q1  : out real;
    quantity q2  : out real
  );
end entity;

architecture behavioral of div_demo is
  constant zero : real := 0.0;
begin
  q1 == num / zero;
  q2 == num / den;
end architecture;

package diag

import (
	"fmt"
	"sort"
)

// Code is a stable diagnostic code such as "VASS0201". Codes never change
// meaning once released; retired codes are not reused.
//
// The numbering blocks are:
//
//	VASS01xx  lexical and syntax diagnostics (lexer, parser)
//	VASS02xx  semantic diagnostics (sema)
//	VASS03xx  VHIF compilation diagnostics (compile)
//	VASS04xx  VHIF structural diagnostics (vhif validation and parsing)
//	VASS05xx  lint analyzers (internal/lint)
type Code string

// CodeInfo is the registry entry of one code.
type CodeInfo struct {
	Code     Code
	Severity Severity
	Summary  string
}

var registry = map[Code]CodeInfo{}

func reg(c Code, sev Severity, summary string) Code {
	if _, dup := registry[c]; dup {
		panic(fmt.Sprintf("diag: duplicate code %s", c))
	}
	registry[c] = CodeInfo{Code: c, Severity: sev, Summary: summary}
	return c
}

// Severity returns the registered default severity of c (Error when c is
// unregistered).
func (c Code) Severity() Severity {
	if info, ok := registry[c]; ok {
		return info.Severity
	}
	return Error
}

// Summary returns the registered one-line summary of c.
func (c Code) Summary() string { return registry[c].Summary }

// Lookup returns the registry entry for c.
func Lookup(c Code) (CodeInfo, bool) {
	info, ok := registry[c]
	return info, ok
}

// Codes returns every registered code sorted by code, for documentation and
// registry-stability tests.
func Codes() []CodeInfo {
	out := make([]CodeInfo, 0, len(registry))
	for _, info := range registry {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Lexical and syntax diagnostics (VASS01xx).
var (
	CodeSyntax        = reg("VASS0100", Error, "syntax error")
	CodeLex           = reg("VASS0101", Error, "lexical error")
	CodeOutsideSubset = reg("VASS0110", Error, "VHDL-AMS construct outside the VASS synthesis subset")
)

// Semantic diagnostics (VASS02xx).
var (
	CodeSema          = reg("VASS0200", Error, "semantic error")
	CodeUndeclared    = reg("VASS0201", Error, "undeclared name")
	CodeDuplicate     = reg("VASS0202", Error, "duplicate declaration")
	CodeTypeMismatch  = reg("VASS0203", Error, "type mismatch")
	CodeUnknownType   = reg("VASS0204", Error, "unknown type")
	CodeBadAnnotation = reg("VASS0205", Error, "invalid synthesis annotation")
	CodeBadProcess    = reg("VASS0206", Error, "process violates VASS restrictions")
	CodeNotStatic     = reg("VASS0207", Error, "expression must be statically known")
	CodeUndriven      = reg("VASS0208", Error, "output quantity is never defined")
	CodeBadLoop       = reg("VASS0209", Error, "loop violates VASS restrictions")
)

// Compilation diagnostics (VASS03xx).
var (
	CodeCompile       = reg("VASS0300", Error, "compilation error")
	CodeDAEMatch      = reg("VASS0301", Error, "DAE set cannot be matched to its unknowns")
	CodeNoRealization = reg("VASS0302", Error, "expression has no analog signal-flow realization")
	CodeNoControl     = reg("VASS0303", Error, "condition has no control-signal realization")
	CodeDepCycle      = reg("VASS0304", Error, "algebraic dependency cycle among continuous statements")
	CodeComposite     = reg("VASS0305", Error, "composite-typed object is not compilable to scalar nets")
	CodeNoTopology    = reg("VASS0306", Error, "no feasible DAE solver topology")
)

// VHIF structural diagnostics (VASS04xx).
var (
	CodeVHIF          = reg("VASS0400", Error, "VHIF structural error")
	CodeVHIFArity     = reg("VASS0401", Error, "block input arity violation")
	CodeVHIFControl   = reg("VASS0402", Error, "control input typing violation")
	CodeVHIFNet       = reg("VASS0403", Error, "net connectivity violation")
	CodeAlgebraicLoop = reg("VASS0404", Error, "algebraic loop without a state element")
	CodeFSMStructure  = reg("VASS0405", Error, "FSM structural error")
	CodeVHIFLink      = reg("VASS0406", Error, "control link violation")
	CodeVHIFParse     = reg("VASS0410", Error, "VHIF text format parse error")
)

// Lint diagnostics (VASS05xx). Grouped by analyzer: 050x unused, 051x FSM
// states, 052x algebraic loops, 053x dimensions, 054x division, 055x ranges,
// 056x annotations, 057x subset conformance, 058x value-range analysis
// (abstract interpretation).
var (
	CodeUnusedObject     = reg("VASS0501", Warning, "object is declared but never used")
	CodeWriteOnlySignal  = reg("VASS0502", Info, "signal is written but never read")
	CodeUnusedFunction   = reg("VASS0503", Info, "function is declared but never called")
	CodeUnreachableState = reg("VASS0511", Warning, "FSM state is unreachable from the start state")
	CodeDeadEndState     = reg("VASS0512", Warning, "FSM state has no outgoing transition")
	CodeLintLoop         = reg("VASS0521", Error, "algebraic loop in the compiled signal-flow graph")
	CodeDimension        = reg("VASS0531", Warning, "mixed voltage and current quantities")
	CodeDivByZero        = reg("VASS0541", Error, "division by a constant zero")
	CodeDivMaybeZero     = reg("VASS0542", Warning, "divisor may be zero within its declared range")
	CodeConstOutOfRange  = reg("VASS0551", Warning, "constant lies outside the declared range of its target")
	CodeDeadThreshold    = reg("VASS0552", Warning, "'above threshold lies outside the declared range of its quantity")
	CodeAnnFreqOrder     = reg("VASS0561", Error, "frequency annotation bounds are inverted")
	CodeAnnRangeOrder    = reg("VASS0562", Error, "range annotation bounds are inverted")
	CodeAnnWrongDir      = reg("VASS0563", Warning, "output-stage annotation on an input port")
	CodeAnnBadDrive      = reg("VASS0564", Error, "drive annotation requires a positive load resistance")
	CodeAnnPeakVsLimit   = reg("VASS0565", Warning, "required peak drive exceeds the clipping level")
	CodeSubsetProcess    = reg("VASS0571", Error, "process form outside the VASS subset")
	CodeSubsetLoop       = reg("VASS0572", Error, "loop form outside the VASS subset")
	CodeSubsetComposite  = reg("VASS0573", Warning, "composite types compile only element-wise")
	CodeSubsetPortMode   = reg("VASS0574", Error, "port mode outside the VASS subset")
	CodeSubsetDerivative = reg("VASS0575", Error, "derivative form outside the VASS subset")
	CodeAssertViolated   = reg("VASS0581", Error, "assertion is statically violated for every admissible input")
	CodeAssertVacuous    = reg("VASS0582", Info, "assertion is vacuous: it decides without observing any signal")
	CodeDeadBranch       = reg("VASS0583", Warning, "event branch is statically unreachable")
	CodeDeadNet          = reg("VASS0584", Warning, "net is computed but can never influence an output")
	CodeSaturation       = reg("VASS0585", Warning, "signal range exceeds the library cell output headroom")
)

package assertlang

import (
	"context"
	"testing"

	"vase/internal/sim"
	"vase/internal/vhif"
)

// rampModule integrates a DC input: y(t) = t for a unit input, a waveform
// whose monitored properties have exact closed forms.
func rampModule() *vhif.Module {
	g := vhif.NewGraph("main")
	in := g.AddBlock(vhif.BInput, "a")
	integ := g.AddBlock(vhif.BIntegrator, "i1", in.Out)
	g.AddBlock(vhif.BOutput, "y", integ.Out)
	return &vhif.Module{Name: "ramp", Graphs: []*vhif.Graph{g}}
}

func rampInputs() map[string]sim.Source {
	return map[string]sim.Source{"a": sim.DC(1)}
}

func TestStreamingMonitorsOnSimTransient(t *testing.T) {
	as := []*Assertion{
		mustParse(t, "always v(y) <= 2"),
		mustParse(t, "eventually v(y) >= 0.5 within 0.8"),
		mustParse(t, "recurrence v(y) >= 0 every 0.1"),
	}
	ms := Monitors(as)
	opts := sim.Options{TStop: 1, TStep: 1e-2, OnSample: StreamSim(ms)}
	tr, err := sim.SimulateModule(rampModule(), rampInputs(), opts)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	outs := FinishAll(ms, tr.Truncated)
	for i, o := range outs {
		if o.Verdict != Pass {
			t.Errorf("assertion %d (%s): %v", i, as[i].Text, o)
		}
	}
	// The offline evaluation over the stored trace must agree sample for
	// sample with the streaming path.
	offline := CheckTrace(as, tr)
	for i := range outs {
		if outs[i].Verdict != offline[i].Verdict {
			t.Errorf("assertion %d: streaming %v, offline %v", i, outs[i].Verdict, offline[i].Verdict)
		}
	}
}

// TestTruncatedTransientIsInconclusive is the regression for the
// truncation contract: a step-budget- or deadline-cancelled transient
// yields a prefix, and monitors must report Unknown — never Fail — for
// properties the prefix leaves unresolved.
func TestTruncatedTransientIsInconclusive(t *testing.T) {
	as := []*Assertion{
		// On the full 1 s run y reaches 1.0, violating this always; the
		// truncated prefix (y <= ~0.25) never observes the violation.
		mustParse(t, "always v(y) <= 0.5"),
		// Satisfied only at t ~ 0.9, far beyond the truncation point.
		mustParse(t, "eventually v(y) >= 0.9 within 1"),
	}
	ms := Monitors(as)
	opts := sim.Options{TStop: 1, TStep: 1e-2, MaxSteps: 25, OnSample: StreamSim(ms)}
	tr, err := sim.SimulateModule(rampModule(), rampInputs(), opts)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !tr.Truncated {
		t.Fatal("MaxSteps did not truncate the trace")
	}
	for i, o := range FinishAll(ms, tr.Truncated) {
		if o.Verdict != Unknown {
			t.Errorf("assertion %d (%s) on truncated prefix: %v, want UNKNOWN", i, as[i].Text, o)
		}
	}
	// Offline over the truncated trace agrees.
	for i, o := range CheckTrace(as, tr) {
		if o.Verdict != Unknown {
			t.Errorf("offline assertion %d on truncated prefix: %v, want UNKNOWN", i, o)
		}
	}

	// The full run resolves both conclusively: the always fails (y passes
	// 0.5), the eventually passes.
	full, err := sim.SimulateModule(rampModule(), rampInputs(), sim.Options{TStop: 1, TStep: 1e-2})
	if err != nil {
		t.Fatalf("full simulate: %v", err)
	}
	outs := CheckTrace(as, full)
	if outs[0].Verdict != Fail {
		t.Errorf("always on full run: %v, want FAIL", outs[0])
	}
	if outs[1].Verdict != Pass {
		t.Errorf("eventually on full run: %v, want PASS", outs[1])
	}
}

// TestDeadlineCancelledTransientIsInconclusive drives the cancellation path
// (context already expired): the run returns an empty-or-prefix truncated
// trace and every monitor must resolve to Unknown.
func TestDeadlineCancelledTransientIsInconclusive(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	as := []*Assertion{
		mustParse(t, "always v(y) <= 0.5"),
		mustParse(t, "eventually v(y) >= 0.9 within 1"),
	}
	ms := Monitors(as)
	opts := sim.Options{TStop: 1, TStep: 1e-2, OnSample: StreamSim(ms)}
	tr, err := sim.SimulateModuleContext(ctx, rampModule(), rampInputs(), opts)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !tr.Truncated {
		t.Fatal("cancelled run did not truncate the trace")
	}
	for i, o := range FinishAll(ms, tr.Truncated) {
		if o.Verdict != Unknown {
			t.Errorf("assertion %d on cancelled run: %v, want UNKNOWN", i, o)
		}
	}
}

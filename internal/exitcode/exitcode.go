// Package exitcode defines the process exit-code contract shared by every
// VASE command-line tool and its mapping onto HTTP statuses for vased.
//
// The contract:
//
//	0  OK       the requested work completed
//	1  Error    the work ran and failed: compile errors, error-severity lint
//	            findings, failed assertions, campaign divergences
//	2  Usage    the invocation was wrong: bad flags, wrong argument count,
//	            unknown pass/suite/level names, unreadable input paths
//	3  Unknown  the run decided nothing either way — vasesim -assert with
//	            undecided monitors on a truncated or too-short trace
//
// Scripts can therefore distinguish "checked and passed" (0) from "checked
// and failed" (1) from "you called it wrong" (2) from "not decided" (3)
// uniformly across vase, vassc, vaselint, vasesim, vasegen, vasebench and
// diagcheck. The flag package's own parse failures already exit 2, which the
// contract adopts as the Usage code.
package exitcode

import (
	"fmt"
	"net/http"
	"os"
)

const (
	// OK: the requested work completed.
	OK = 0
	// Error: the work ran and failed (diagnostics, findings, divergences).
	Error = 1
	// Usage: the invocation itself was wrong.
	Usage = 2
	// Unknown: the run completed but decided nothing (undecided assertions).
	Unknown = 3
)

// HTTPStatus maps a tool exit code onto the HTTP status vased uses for the
// equivalent outcome:
//
//	OK      -> 200 OK
//	Usage   -> 400 Bad Request        (malformed request body or parameters)
//	Error   -> 422 Unprocessable Entity (well-formed input that fails to
//	           compile, lint clean, or synthesize)
//	Unknown -> 206 Partial Content    (an answer was produced but is not a
//	           definitive verdict — mirrors vasesim's exit 3)
//
// Transport-level conditions (queue saturation 429, queue deadline 503,
// request deadline 504) have no exit-code analogue and are handled by the
// server directly.
func HTTPStatus(code int) int {
	switch code {
	case OK:
		return http.StatusOK
	case Usage:
		return http.StatusBadRequest
	case Unknown:
		return http.StatusPartialContent
	default:
		return http.StatusUnprocessableEntity
	}
}

// Fail prints "tool: err" to stderr and exits with the given code. It is the
// shared tail of every CLI's error path; keeping it here keeps the code
// choice next to the contract it implements.
func Fail(tool string, code int, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(code)
}

// Command vased serves the VASE toolchain over HTTP/JSON: parse, lint,
// synthesize and simulate endpoints sharing one content-addressed pipeline
// cache with single-flight deduplication, plus admission control, a shared
// search-worker budget, per-request deadlines mapped onto the anytime
// synthesis contract, and a /metrics endpoint.
//
// Usage:
//
//	vased -addr :8080 -cache-dir /var/cache/vase -cache-bytes 268435456
//
// Endpoints and request formats are documented in internal/server and
// DESIGN.md §14; quickstart curl examples are in the README.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vase/internal/exitcode"
	"vase/internal/pipeline"
	"vase/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "persist compile and synthesis artifacts in this directory (content-addressed, shareable with the CLIs)")
	cacheBytes := flag.Int64("cache-bytes", 0, "byte budget for the on-disk cache; LRU artifacts are evicted beyond it (0 = unbounded)")
	memEntries := flag.Int("cache-entries", 0, "in-memory LRU entries (0 = default)")
	maxConcurrent := flag.Int("max-concurrent", 0, "simultaneously running requests (0 = all CPUs)")
	queueDepth := flag.Int("queue-depth", 0, "requests queued beyond -max-concurrent before shedding with 429 (0 = 4x max-concurrent)")
	queueWait := flag.Duration("queue-wait", 0, "longest a request queues before 503 (0 = 2s)")
	workers := flag.Int("worker-budget", 0, "shared branch-and-bound worker budget across all synthesize requests (0 = all CPUs)")
	defaultTimeout := flag.Duration("default-timeout", 0, "per-request deadline when the client sends none (0 = 30s)")
	maxTimeout := flag.Duration("max-timeout", 0, "clamp on client-requested deadlines (0 = 5m)")
	flag.Parse()
	if flag.NArg() != 0 {
		usage(fmt.Errorf("unexpected arguments %v (usage: vased [flags])", flag.Args()))
	}

	pipe, err := pipeline.New(pipeline.Options{
		MemoryEntries: *memEntries,
		CacheDir:      *cacheDir,
		CacheBytes:    *cacheBytes,
	})
	if err != nil {
		fail(err)
	}
	srv, err := server.New(server.Config{
		Pipeline:        pipe,
		MaxConcurrent:   *maxConcurrent,
		QueueDepth:      *queueDepth,
		QueueWait:       *queueWait,
		WorkerBudget:    *workers,
		DefaultDeadline: *defaultTimeout,
		MaxDeadline:     *maxTimeout,
	})
	if err != nil {
		fail(err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vased: listening on %s\n", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "vased: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	exitcode.Fail("vased", exitcode.Error, err)
}

func usage(err error) {
	exitcode.Fail("vased", exitcode.Usage, err)
}

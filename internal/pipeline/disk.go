package pipeline

import (
	"os"
	"path/filepath"
)

// diskStore is the on-disk artifact cache: one file per (stage, key), named
// <stage>-<keyhex>.art. Artifacts are content-addressed, so files are
// immutable once written and a directory can be shared by concurrent
// processes — the worst race outcome is two writers producing the same
// bytes.
type diskStore struct {
	dir string
}

func newDiskStore(dir string) (*diskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskStore{dir: dir}, nil
}

func (d *diskStore) path(st Stage, k Key) string {
	return filepath.Join(d.dir, st.String()+"-"+k.String()+".art")
}

func (d *diskStore) read(st Stage, k Key) ([]byte, bool) {
	data, err := os.ReadFile(d.path(st, k))
	if err != nil {
		return nil, false
	}
	return data, true
}

// write stores an artifact atomically (temp file + rename), so a reader in
// another process never observes a half-written artifact.
func (d *diskStore) write(st Stage, k Key, data []byte) error {
	tmp, err := os.CreateTemp(d.dir, "tmp-*.art")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), d.path(st, k)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

package compile

import (
	"strings"
	"testing"

	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/vhif"
)

func compileSrc(t *testing.T, src string) *vhif.Module {
	t.Helper()
	df, err := parser.Parse("test.vhd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m, err := Compile(d)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("module invalid: %v\n%s", err, m.Dump())
	}
	return m
}

func compileErr(t *testing.T, src string) error {
	t.Helper()
	df, err := parser.Parse("test.vhd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	_, err = Compile(d)
	if err == nil {
		t.Fatal("expected compile error, got none")
	}
	return err
}

const receiverSrc = `
entity telephone is
  port (
    quantity line  : in real is voltage;
    quantity local : in real is voltage;
    quantity earph : out real is voltage limited at 1.5 drives 270.0 at 0.285 peak
  );
end entity;
architecture behavioral of telephone is
  constant Aline  : real := 4.0;
  constant Alocal : real := 2.0;
  constant r1c    : real := 0.5;
  constant r2c    : real := 0.25;
  constant Vth    : real := 0.1;
  quantity rvar : real;
  signal c1 : bit;
begin
  earph == (Aline * line + Alocal * local) * rvar;
  if (c1 = '1') use
    rvar == r1c;
  else
    rvar == r1c + r2c;
  end use;
  process (line'above(Vth)) is
  begin
    if (line'above(Vth) = true) then
      c1 <= '1';
    else
      c1 <= '0';
    end if;
  end process;
end architecture;
`

func TestCompileReceiver(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	g := m.Graphs[0]
	counts := map[vhif.BlockKind]int{}
	for _, b := range g.Blocks {
		counts[b.Kind]++
	}
	// Figure 7a: weighted sum (2 gains + add), rvar selection (mux),
	// multiplier, comparator from the process, plus the annotation-inferred
	// limiter and output stage.
	want := map[vhif.BlockKind]int{
		vhif.BGain:       2,
		vhif.BAdd:        1,
		vhif.BMux:        1,
		vhif.BMul:        1,
		vhif.BComparator: 1,
		vhif.BLimiter:    1,
		vhif.BBuffer:     1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s blocks = %d, want %d\n%s", k, counts[k], n, m.Dump())
		}
	}
}

func TestReceiverTable1Metrics(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	// Table 1 row "Receiver Module": 6 blocks, 4 states, 1 data-path.
	if n := m.BlockCount(); n != 6 {
		t.Errorf("BlockCount = %d, want 6\n%s", n, m.Dump())
	}
	if n := m.StateCount(); n != 4 {
		t.Errorf("StateCount = %d, want 4", n)
	}
	if n := m.DatapathCount(); n != 1 {
		t.Errorf("DatapathCount = %d, want 1", n)
	}
}

func TestReceiverComparatorHysteresis(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	for _, b := range m.Graphs[0].Blocks {
		if b.Kind == vhif.BComparator {
			if !b.FromFSM {
				t.Error("comparator should be tagged FromFSM")
			}
			if b.Hyst == 0 {
				t.Error("process-derived comparator should carry a hysteresis margin")
			}
			if b.Param != 0.1 {
				t.Errorf("comparator threshold = %g, want 0.1", b.Param)
			}
		}
	}
}

func TestReceiverOutputStageOrdering(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	g := m.Graphs[0]
	var out *vhif.Block
	for _, b := range g.Blocks {
		if b.Kind == vhif.BOutput && b.Name == "earph" {
			out = b
		}
	}
	if out == nil {
		t.Fatal("no earph output block")
	}
	// Output is fed by buffer, which is fed by limiter.
	buf := out.Inputs[0].Driver
	if buf.Kind != vhif.BBuffer {
		t.Fatalf("output driven by %s, want buffer", buf.Kind)
	}
	lim := buf.Inputs[0].Driver
	if lim.Kind != vhif.BLimiter {
		t.Fatalf("buffer driven by %s, want limiter", lim.Kind)
	}
	if lim.Param != 1.5 {
		t.Errorf("limiter level = %g, want 1.5", lim.Param)
	}
}

func TestCompileHarmonicOscillatorDAE(t *testing.T) {
	// x'dot == v; v'dot == -x: two integrators in a loop.
	m := compileSrc(t, `
entity osc is
  port (quantity x : out real);
end entity;
architecture a of osc is
  quantity v : real;
begin
  x'dot == v;
  v'dot == -x;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BIntegrator); n != 2 {
		t.Errorf("integrators = %d, want 2\n%s", n, m.Dump())
	}
	if n := g.CountKind(vhif.BNeg); n != 1 {
		t.Errorf("negators = %d, want 1", n)
	}
}

func TestDAEIsolationLinear(t *testing.T) {
	// 2.0 * y + x == 3.0 * x  must solve to y == (3x - x)/2.
	m := compileSrc(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
begin
  2.0 * y + x == 3.0 * x;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BSub); n != 1 {
		t.Errorf("sub blocks = %d, want 1 (rest - x)\n%s", n, m.Dump())
	}
	// Division by the constant 2 becomes a gain of 0.5.
	found := false
	for _, b := range g.Blocks {
		if b.Kind == vhif.BGain && b.Param == 0.5 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a gain 0.5 stage from /2.0\n%s", m.Dump())
	}
}

func TestDAEIsolationThroughLog(t *testing.T) {
	// log(y) == x  solves to y == exp(x).
	m := compileSrc(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
begin
  log(y) == x;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BExp); n != 1 {
		t.Errorf("exp blocks = %d, want 1\n%s", n, m.Dump())
	}
	if n := g.CountKind(vhif.BLog); n != 0 {
		t.Errorf("log blocks = %d, want 0", n)
	}
}

func TestDAEAlternativeTopologies(t *testing.T) {
	// x + y == u; y'dot == x. Two matchings exist (eq1 may define x or y),
	// but the swap (y from eq1, x from eq2) is an algebraic loop through a
	// differentiator — a non-causal solver the enumeration must prune.
	df, err := parser.Parse("t", `
entity e is
  port (quantity u : in real; quantity x, y : out real);
end entity;
architecture a of e is
begin
  x + y == u;
  y'dot == x;
end architecture;`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}

	matchings, unknowns, _, err := enumerateMatchings(d, 0)
	if err != nil {
		t.Fatalf("enumerate: %v", err)
	}
	if len(unknowns) != 2 {
		t.Fatalf("unknowns = %v, want [x y]", unknowns)
	}
	if len(matchings) != 2 {
		t.Fatalf("raw matchings = %d, want 2 (both orientations of eq1)", len(matchings))
	}

	mods, err := CompileAll(d, 0)
	if err != nil {
		t.Fatalf("compile all: %v", err)
	}
	// Only the causal orientation survives: x = u - y with y = integ(x).
	if len(mods) != 1 {
		t.Fatalf("feasible solver topologies = %d, want 1 (non-causal matching pruned)", len(mods))
	}
	g := mods[0].Graphs[0]
	if n := g.CountKind(vhif.BIntegrator); n != 1 {
		t.Errorf("integrators = %d, want 1\n%s", n, mods[0].Dump())
	}
	if n := g.CountKind(vhif.BDifferentiator); n != 0 {
		t.Errorf("differentiators = %d, want 0", n)
	}
}

func TestUnderdeterminedDAERejected(t *testing.T) {
	err := compileErr(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
  quantity z : real;
begin
  y + z == x;
end architecture;`)
	if !strings.Contains(err.Error(), "equations") {
		t.Errorf("error = %v", err)
	}
}

func TestAlgebraicLoopRejected(t *testing.T) {
	err := compileErr(t, `
entity e is
  port (quantity u : in real; quantity x : out real);
end entity;
architecture a of e is
  quantity y : real;
begin
  x == y + u;
  y == x * u;
end architecture;`)
	if !strings.Contains(err.Error(), "cycle") && !strings.Contains(err.Error(), "loop") {
		t.Errorf("error = %v", err)
	}
}

func TestProceduralDataflow(t *testing.T) {
	m := compileSrc(t, `
entity f is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture beh of f is
begin
  procedural is
    variable t1 : real;
  begin
    t1 := a * 2.0;
    y := t1 + a;
  end procedural;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BGain); n != 1 {
		t.Errorf("gains = %d, want 1", n)
	}
	if n := g.CountKind(vhif.BAdd); n != 1 {
		t.Errorf("adds = %d, want 1", n)
	}
}

func TestProceduralForUnroll(t *testing.T) {
	m := compileSrc(t, `
entity f is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture beh of f is
begin
  procedural is
    variable acc : real;
  begin
    acc := a;
    for i in 1 to 3 loop
      acc := acc + a;
    end loop;
    y := acc;
  end procedural;
end architecture;`)
	g := m.Graphs[0]
	// Three unrolled additions.
	if n := g.CountKind(vhif.BAdd); n != 3 {
		t.Errorf("adds = %d, want 3\n%s", n, m.Dump())
	}
}

func TestForLoopVarFoldsAsConstant(t *testing.T) {
	m := compileSrc(t, `
entity f is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture beh of f is
begin
  procedural is
    variable acc : real;
  begin
    acc := 0.0 * a;
    for i in 1 to 2 loop
      acc := acc + a * i;
    end loop;
    y := acc;
  end procedural;
end architecture;`)
	g := m.Graphs[0]
	// a*i folds the loop variable into gain stages with params 1 and 2.
	var params []float64
	for _, b := range g.Blocks {
		if b.Kind == vhif.BGain {
			params = append(params, b.Param)
		}
	}
	if len(params) != 3 { // 0.0*a also becomes a gain stage
		t.Fatalf("gain stages = %d (%v), want 3\n%s", len(params), params, m.Dump())
	}
}

func TestProceduralIfBecomesMux(t *testing.T) {
	m := compileSrc(t, `
entity f is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture beh of f is
begin
  procedural is
    variable v : real;
  begin
    if a > 1.0 then
      v := a * 2.0;
    else
      v := a * 3.0;
    end if;
    y := v;
  end procedural;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BMux); n != 1 {
		t.Errorf("mux = %d, want 1\n%s", n, m.Dump())
	}
	if n := g.CountKind(vhif.BComparator); n != 1 {
		t.Errorf("comparators = %d, want 1", n)
	}
}

func TestWhileLoopFigure4Structure(t *testing.T) {
	m := compileSrc(t, `
entity f is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture beh of f is
begin
  procedural is
    variable acc : real;
  begin
    acc := a;
    while acc > 1.0 loop
      acc := acc * 0.5;
    end loop;
    y := acc;
  end procedural;
end architecture;`)
	g := m.Graphs[0]
	// Figure 4: two condition blocks (entry + loop), S/H1 and S/H2.
	if n := g.CountKind(vhif.BComparator); n != 2 {
		t.Errorf("comparators = %d, want 2 (icontr + contr)\n%s", n, m.Dump())
	}
	if n := g.CountKind(vhif.BSampleHold); n != 2 {
		t.Errorf("sample-holds = %d, want 2 (S/H1 + S/H2)", n)
	}
	if n := g.CountKind(vhif.BMux); n != 2 {
		t.Errorf("routing muxes = %d, want 2 (iteration routing + bypass, the sw switches of Fig. 4b)", n)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("while structure invalid: %v", err)
	}
}

func TestFunctionInlining(t *testing.T) {
	m := compileSrc(t, `
package utils is
  function scale3(x : real) return real;
end package;
package body utils is
  function scale3(x : real) return real is
  begin
    return 3.0 * x;
  end function;
end package body;
entity f is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture beh of f is
begin
  procedural is
  begin
    y := scale3(a) + scale3(a * 2.0);
  end procedural;
end architecture;`)
	g := m.Graphs[0]
	// Each call inlines its own gain stage: 3.0*x twice plus the 2.0 gain.
	if n := g.CountKind(vhif.BGain); n != 3 {
		t.Errorf("gains = %d, want 3\n%s", n, m.Dump())
	}
}

func TestSampleHoldInference(t *testing.T) {
	// if/use without else infers a sample-and-hold.
	m := compileSrc(t, `
entity sh is
  port (quantity vin : in real; quantity vout : out real);
end entity;
architecture a of sh is
  quantity held : real;
  signal strobe : bit;
begin
  if (strobe = '1') use
    held == vin;
  end use;
  vout == held;
  process (vin'above(0.0)) is
  begin
    if (vin'above(0.0) = true) then
      strobe <= '1';
    else
      strobe <= '0';
    end if;
  end process;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BSampleHold); n != 1 {
		t.Errorf("sample-holds = %d, want 1\n%s", n, m.Dump())
	}
}

func TestSchmittToggleExtraction(t *testing.T) {
	m := compileSrc(t, `
entity gen is
  port (quantity ramp : out real);
end entity;
architecture a of gen is
  constant k : real := 1000.0;
  constant amp : real := 1.0;
  quantity slope : real;
  signal up : bit;
begin
  ramp'dot == slope;
  if (up = '1') use
    slope == k;
  else
    slope == -k;
  end use;
  process (ramp'above(amp), ramp'above(-amp)) is
  begin
    up <= not up;
  end process;
end architecture;`)
	g := m.Graphs[0]
	var schmitt *vhif.Block
	for _, b := range g.Blocks {
		if b.Kind == vhif.BSchmitt {
			schmitt = b
		}
	}
	if schmitt == nil {
		t.Fatalf("no Schmitt trigger extracted\n%s", m.Dump())
	}
	if schmitt.Param != 0 {
		t.Errorf("schmitt center = %g, want 0", schmitt.Param)
	}
	if schmitt.Hyst != 1.0 {
		t.Errorf("schmitt hysteresis = %g, want 1", schmitt.Hyst)
	}
	if !schmitt.FromFSM {
		t.Error("schmitt should be FSM datapath")
	}
}

func TestSchmittIfElsifExtraction(t *testing.T) {
	m := compileSrc(t, `
entity gen is
  port (quantity x : in real);
end entity;
architecture a of gen is
  signal s : bit;
  quantity q : real;
begin
  if (s = '1') use
    q == x;
  else
    q == -x;
  end use;
  process (x'above(2.0), x'above(1.0)) is
  begin
    if (x'above(2.0) = true) then
      s <= '1';
    elsif (x'above(1.0) = false) then
      s <= '0';
    end if;
  end process;
end architecture;`)
	g := m.Graphs[0]
	var schmitt *vhif.Block
	for _, b := range g.Blocks {
		if b.Kind == vhif.BSchmitt {
			schmitt = b
		}
	}
	if schmitt == nil {
		t.Fatalf("no Schmitt trigger extracted\n%s", m.Dump())
	}
	if schmitt.Param != 1.5 || schmitt.Hyst != 0.5 {
		t.Errorf("schmitt center/hyst = %g/%g, want 1.5/0.5", schmitt.Param, schmitt.Hyst)
	}
}

func TestADCBuiltin(t *testing.T) {
	m := compileSrc(t, `
entity conv is
  port (quantity vin : in real; quantity dout : out real);
end entity;
architecture a of conv is
begin
  dout == adc(vin, 8.0);
end architecture;`)
	g := m.Graphs[0]
	var adc *vhif.Block
	for _, b := range g.Blocks {
		if b.Kind == vhif.BADC {
			adc = b
		}
	}
	if adc == nil {
		t.Fatal("no ADC block")
	}
	if adc.Param != 8 {
		t.Errorf("adc bits = %g, want 8", adc.Param)
	}
}

func TestFSMStructureReceiver(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	if len(m.FSMs) != 1 {
		t.Fatalf("fsms = %d, want 1", len(m.FSMs))
	}
	f := m.FSMs[0]
	if len(f.States) != 4 {
		t.Fatalf("states = %d, want 4 (start, eval, set, clear)\n%s", len(f.States), m.Dump())
	}
	if err := f.Validate(); err != nil {
		t.Errorf("fsm invalid: %v", err)
	}
	// Resume arc from start carries the 'above event.
	arcs := f.ArcsFrom(f.Start)
	if len(arcs) != 1 {
		t.Fatalf("arcs from start = %d, want 1", len(arcs))
	}
	if _, ok := arcs[0].Cond.(*vhif.DEvent); !ok {
		t.Errorf("resume guard = %T (%v), want DEvent", arcs[0].Cond, arcs[0].Cond)
	}
}

func TestFSMConcurrencyGrouping(t *testing.T) {
	// Two independent assignments share a state; a dependent third forces a
	// second state (paper Figure 3: assignments 4,5 in state 1; 6 in state 2,
	// data-dependent through variable n).
	m := compileSrc(t, `
entity e is
  port (quantity a, b : in real);
end entity;
architecture arch of e is
  signal s : bit;
begin
  process (a'above(1.0), b'above(2.0)) is
    variable v, n, u : real;
  begin
    v := 1.0;
    n := 2.0;
    u := n + 1.0;
  end process;
end architecture;`)
	f := m.FSMs[0]
	// start + state{m,n} + state{p} = 3 states.
	if len(f.States) != 3 {
		t.Fatalf("states = %d, want 3\n%s", len(f.States), m.Dump())
	}
	if len(f.States[1].Ops) != 2 {
		t.Errorf("first state ops = %d, want 2 (concurrent m,n)", len(f.States[1].Ops))
	}
	if len(f.States[2].Ops) != 1 {
		t.Errorf("second state ops = %d, want 1 (dependent p)", len(f.States[2].Ops))
	}
}

func TestDirectEventAssignment(t *testing.T) {
	m := compileSrc(t, `
entity e is
  port (quantity a : in real);
end entity;
architecture arch of e is
  signal s : bit;
  quantity q : real;
begin
  if (s = '1') use
    q == a;
  else
    q == -a;
  end use;
  process (a'above(0.5)) is
  begin
    s <= a'above(0.5);
  end process;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BComparator); n != 1 {
		t.Errorf("comparators = %d, want 1\n%s", n, m.Dump())
	}
	if n := m.DatapathCount(); n != 1 {
		t.Errorf("datapath = %d, want 1", n)
	}
}

func TestControlLinksRecorded(t *testing.T) {
	m := compileSrc(t, receiverSrc)
	if len(m.Controls) == 0 {
		t.Fatal("no control links recorded")
	}
	found := false
	for _, c := range m.Controls {
		if c.Signal == "c1" {
			found = true
		}
	}
	if !found {
		t.Error("control link for c1 missing")
	}
}

func TestConstDeduplication(t *testing.T) {
	m := compileSrc(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  y == (a + 5.0) + 5.0;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BConst); n != 1 {
		t.Errorf("const blocks = %d, want 1 (deduplicated)", n)
	}
}

func TestPowerOfTwoByMultiplication(t *testing.T) {
	m := compileSrc(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  y == a ** 2;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BMul); n != 1 {
		t.Errorf("mul blocks = %d, want 1\n%s", n, m.Dump())
	}
	if n := g.CountKind(vhif.BLog); n != 0 {
		t.Errorf("log blocks = %d, want 0", n)
	}
}

func TestGeneralPowerViaLogExp(t *testing.T) {
	m := compileSrc(t, `
entity e is
  port (quantity a, b : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  y == a ** b;
end architecture;`)
	g := m.Graphs[0]
	if g.CountKind(vhif.BLog) != 1 || g.CountKind(vhif.BExp) != 1 {
		t.Errorf("expected log+exp realization\n%s", m.Dump())
	}
}

func TestTerminalReferenceRead(t *testing.T) {
	// A terminal port's across quantity (t'reference) is readable in the
	// continuous part — VASS uses one facet per terminal.
	m := compileSrc(t, `
entity probe is
  port (
    terminal tin : electrical;
    quantity y : out real
  );
end entity;
architecture a of probe is
begin
  y == 2.0 * tin'reference;
end architecture;`)
	g := m.Graphs[0]
	if n := g.CountKind(vhif.BGain); n != 1 {
		t.Errorf("gains = %d, want 1\n%s", n, m.Dump())
	}
	// The terminal materializes as an input block.
	found := false
	for _, b := range g.Blocks {
		if b.Kind == vhif.BInput && b.Name == "tin" {
			found = true
		}
	}
	if !found {
		t.Errorf("terminal input block missing\n%s", m.Dump())
	}
}

func TestTerminalBothFacetsRejected(t *testing.T) {
	df, err := parser.Parse("t", `
entity e is
  port (terminal tio : electrical; quantity y : out real);
end entity;
architecture a of e is
begin
  y == tio'reference + tio'contribution;
end architecture;`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := sema.AnalyzeOne(df); err == nil || !strings.Contains(err.Error(), "facet") {
		t.Fatalf("expected single-facet violation, got %v", err)
	}
}

func TestCompositeQuantityDiagnostic(t *testing.T) {
	err := compileErr(t, `
entity vec is
  port (quantity v : in real_vector(1 to 3); quantity y : out real);
end entity;
architecture a of vec is
begin
  y == 1.0;
end architecture;`)
	if !strings.Contains(err.Error(), "composite type") {
		t.Errorf("error = %v", err)
	}
}

// Command vasesim simulates a VASS design: behavioral transient analysis of
// the compiled VHIF, functional simulation of the synthesized netlist, or
// circuit-level simulation of the op-amp macromodel expansion.
//
// Inputs are specified as -in name=spec with specs dc:V, sine:AMP,FREQ,
// step:V0,V1,T0 or ramp:SLOPE.
//
// With -assert, any "-- assert:" pragmas in the source are first decided
// statically by the value-range analysis: a property the abstract
// interpreter proves holds for EVERY input waveform, so its runtime monitor
// is skipped. The remaining assertions are evaluated against the simulated
// trace and the per-assertion verdicts printed. A FAIL exits 1; a run whose
// final verdicts include UNKNOWN (an undecided monitor on a truncated or
// too-short trace) prints a distinct summary line and exits 3, so scripts
// can tell "checked and passed" from "not decided".
//
// Usage:
//
//	vasesim -benchmark receiver -in line=sine:1.5,1000 -in local=dc:0 \
//	        -tstop 3e-3 -tstep 1e-6 -level circuit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vase"
	"vase/internal/assertlang"
	"vase/internal/exitcode"
	"vase/internal/solveropt"
)

type inputFlags map[string]vase.Waveform

func (f inputFlags) String() string { return "name=spec" }

func (f inputFlags) Set(arg string) error {
	name, spec, ok := strings.Cut(arg, "=")
	if !ok {
		return fmt.Errorf("input must be name=spec, got %q", arg)
	}
	w, err := vase.ParseWaveform(spec)
	if err != nil {
		return err
	}
	f[name] = w
	return nil
}

func main() {
	inputs := inputFlags{}
	flag.Var(inputs, "in", "input source: name=dc:V | name=sine:AMP,FREQ | name=step:V0,V1,T0 | name=ramp:SLOPE")
	tstop := flag.Float64("tstop", 1e-3, "simulation end time, s")
	tstep := flag.Float64("tstep", 1e-6, "integration step, s")
	level := flag.String("level", "vhif", "simulation level: vhif (behavioral), netlist (functional), circuit (MNA macromodels)")
	every := flag.Int("every", 50, "print every n-th sample")
	csvPath := flag.String("csv", "", "also write the full trace as CSV to this file")
	benchmark := flag.String("benchmark", "", "simulate a built-in benchmark")
	timeout := flag.Duration("timeout", 0, "wall-clock deadline; an expired simulation prints the partial trace (0 = none)")
	maxSteps := flag.Int("max-steps", 0, "integration step budget; the trace is truncated on exhaustion (0 = unlimited)")
	cacheDir := flag.String("cache-dir", "", "persist compile and synthesis artifacts in this directory (content-addressed, shareable across runs)")
	cacheStats := flag.Bool("cache-stats", false, "print the per-stage cache hit/miss table to stderr on exit")
	solverStats := flag.Bool("stats", false, "print linear-solver statistics to stderr on exit (circuit level only)")
	workers := flag.Int("workers", 0, "parallel fan-out of circuit-level AC sweeps (0 = all CPUs, 1 = sequential; results are identical)")
	solver := solveropt.Exact
	flag.Var(solveropt.Flag{Tier: &solver}, "solver", solveropt.Usage)
	reltol := flag.Float64("reltol", 0, "fast-tier relative error budget vs the reference solver (0 = default)")
	abstol := flag.Float64("abstol", 0, "fast-tier absolute error budget in volts (0 = default)")
	checkAsserts := flag.Bool("assert", false, "evaluate the source's '-- assert:' pragmas against the trace; FAIL exits nonzero (truncated traces resolve to UNKNOWN)")
	flag.Parse()

	pipe, err := vase.NewPipeline(vase.PipelineOptions{CacheDir: *cacheDir})
	if err != nil {
		fail(err)
	}
	if *cacheStats {
		defer func() { fmt.Fprint(os.Stderr, pipe.Stats()) }()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	src, err := loadSource(*benchmark, flag.Args())
	if err != nil {
		usage(err)
	}
	var asserts []*assertlang.Assertion
	if *checkAsserts {
		asserts, err = assertlang.FromSource(src.Text)
		if err != nil {
			fail(err)
		}
		if len(asserts) == 0 {
			fmt.Fprintln(os.Stderr, "note: -assert set but the source has no '-- assert:' pragmas")
		}
	}
	d, err := vase.CompileVia(ctx, pipe, src)
	if err != nil {
		failSource(err, src)
	}

	// Static verdicts first: a proved assertion holds for every input
	// waveform, so its runtime monitor is pure overhead and is skipped. A
	// refuted or undecided assertion keeps its monitor — the run supplies
	// the concrete witness (or stays undecided).
	monitored := asserts
	if len(asserts) > 0 {
		ranges, err := d.RangesContext(ctx)
		if err != nil {
			failSource(err, src)
		}
		monitored = monitored[:0:0]
		proved := 0
		for _, p := range ranges.CheckAll(asserts) {
			fmt.Fprintf(os.Stderr, "assert: static %s: %s", strings.ToUpper(p.Verdict.String()), p.Assertion.Text)
			if p.Reason != "" {
				fmt.Fprintf(os.Stderr, " (%s)", p.Reason)
			}
			fmt.Fprintln(os.Stderr)
			if p.Verdict == vase.StaticProve {
				proved++
				continue
			}
			monitored = append(monitored, p.Assertion)
		}
		if proved > 0 {
			fmt.Fprintf(os.Stderr, "note: %d assertion(s) statically proved — monitors skipped\n", proved)
		}
	}

	opts := vase.SimOptions{TStop: *tstop, TStep: *tstep, MaxSteps: *maxSteps}

	writeCSV := func(tr *vase.Trace) {
		if *csvPath == "" {
			return
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := tr.WriteCSV(f); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvPath)
	}

	var outcomes []assertlang.Outcome
	switch *level {
	case "vhif":
		tr, err := d.SimulateContext(ctx, inputs, opts)
		if err != nil {
			fail(err)
		}
		printTrace(tr, *every)
		writeCSV(tr)
		noteTruncated(tr.Truncated)
		outcomes = assertlang.CheckTrace(monitored, tr)
	case "netlist":
		arch, err := d.SynthesizeContext(ctx, vase.DefaultSynthesisOptions())
		if err != nil {
			fail(err)
		}
		tr, err := arch.SimulateContext(ctx, inputs, opts)
		if err != nil {
			fail(err)
		}
		printTrace(tr, *every)
		writeCSV(tr)
		noteTruncated(tr.Truncated)
		outcomes = assertlang.CheckTrace(monitored, tr)
	case "circuit":
		arch, err := d.SynthesizeContext(ctx, vase.DefaultSynthesisOptions())
		if err != nil {
			fail(err)
		}
		arch.SimWorkers = *workers
		arch.SimSolver = solver.Mode()
		arch.SimBudget = vase.ErrorBudget{RelTol: *reltol, AbsTol: *abstol}
		res, err := arch.SpiceContext(ctx, inputs, *tstop, *tstep)
		if err != nil {
			fail(err)
		}
		printSpice(d, res, *every)
		if *solverStats {
			fmt.Fprintln(os.Stderr, "solver:", res.Stats)
		}
		noteTruncated(res.Tran.Truncated)
		outcomes = assertlang.CheckTran(monitored, res.Elab, res.Tran)
		if solver == solveropt.Fast && (assertlang.Failed(outcomes) || countUnknown(outcomes) > 0) {
			// A FAIL or UNKNOWN within budget noise of a threshold must not
			// stand on fast-tier evidence: re-derive the verdicts of record
			// on the exact tier (see DESIGN.md §16).
			fmt.Fprintln(os.Stderr, "note: fast-tier assert verdicts not clean — re-checking on the exact tier")
			arch.SimSolver = solveropt.Exact.Mode()
			res, err = arch.SpiceContext(ctx, inputs, *tstop, *tstep)
			if err != nil {
				fail(err)
			}
			outcomes = assertlang.CheckTran(monitored, res.Elab, res.Tran)
		}
	default:
		usage(fmt.Errorf("unknown level %q", *level))
	}
	if *solverStats && *level != "circuit" {
		fmt.Fprintln(os.Stderr, "note: -stats applies to -level circuit only")
	}
	for _, o := range outcomes {
		fmt.Fprintln(os.Stderr, "assert:", o)
	}
	if assertlang.Failed(outcomes) {
		fail(fmt.Errorf("%d assertion(s) failed", countFails(outcomes)))
	}
	if n := countUnknown(outcomes); n > 0 {
		// Distinct from both success (0) and failure (1): the run decided
		// nothing either way for these assertions.
		fmt.Fprintf(os.Stderr, "vasesim: %d assertion(s) undecided (UNKNOWN)\n", n)
		os.Exit(exitcode.Unknown)
	}
}

func countUnknown(outs []assertlang.Outcome) int {
	n := 0
	for _, o := range outs {
		if o.Verdict == assertlang.Unknown {
			n++
		}
	}
	return n
}

func countFails(outs []assertlang.Outcome) int {
	n := 0
	for _, o := range outs {
		if o.Verdict == assertlang.Fail {
			n++
		}
	}
	return n
}

// noteTruncated flags a deadlined or budget-bound trace on stderr so a
// partial result is never mistaken for a full run.
func noteTruncated(truncated bool) {
	if truncated {
		fmt.Fprintln(os.Stderr, "note: simulation budget expired — trace is truncated")
	}
}

func printTrace(tr *vase.Trace, every int) {
	var names []string
	for name := range tr.Signals {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-12s", "t")
	for _, n := range names {
		fmt.Printf(" %12s", n)
	}
	fmt.Println()
	for i := range tr.Time {
		if i%every != 0 {
			continue
		}
		fmt.Printf("%-12.6g", tr.Time[i])
		for _, n := range names {
			fmt.Printf(" %12.6g", tr.Signals[n][i])
		}
		fmt.Println()
	}
}

func printSpice(d *vase.Design, res *vase.SpiceResult, every int) {
	// Print the output ports.
	var names []string
	for _, p := range d.VHIF.Ports {
		names = append(names, p.Name)
	}
	fmt.Printf("%-12s", "t")
	cols := map[string][]float64{}
	for _, n := range names {
		if w := res.V(n); w != nil {
			cols[n] = w
			fmt.Printf(" %12s", n)
		}
	}
	fmt.Println()
	times := res.Time()
	for i := range times {
		if i%every != 0 {
			continue
		}
		fmt.Printf("%-12.6g", times[i])
		for _, n := range names {
			if w, ok := cols[n]; ok {
				fmt.Printf(" %12.6g", w[i])
			}
		}
		fmt.Println()
	}
}

func loadSource(benchmark string, args []string) (vase.Source, error) {
	if benchmark != "" {
		app, err := vase.Benchmark(benchmark)
		if err != nil {
			return vase.Source{}, err
		}
		return vase.Source{Name: benchmark + ".vhd", Text: app.Source}, nil
	}
	if len(args) != 1 {
		return vase.Source{}, fmt.Errorf("usage: vasesim [flags] file.vhd (or -benchmark name)")
	}
	text, err := os.ReadFile(args[0])
	if err != nil {
		return vase.Source{}, err
	}
	return vase.Source{Name: args[0], Text: string(text)}, nil
}

func fail(err error) {
	exitcode.Fail("vasesim", exitcode.Error, err)
}

// failSource is fail for errors raised against a known source: diagnostics
// render with source excerpts and caret markers, every finding shown in
// deterministic order, instead of the capped one-line list.
func failSource(err error, src vase.Source) {
	fmt.Fprintln(os.Stderr, vase.RenderDiagnostics(err, src))
	os.Exit(exitcode.Error)
}

func usage(err error) {
	exitcode.Fail("vasesim", exitcode.Usage, err)
}

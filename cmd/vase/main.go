// Command vase runs the full behavioral synthesis flow: VASS specification
// -> VHIF -> op-amp-level component netlist, with area/performance
// estimation and optional SPICE deck export.
//
// Usage:
//
//	vase [-vhif] [-tree] [-spice] [-area] [-lint] [-Werror] file.vhd
//	vase -benchmark receiver -area
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"vase"
	"vase/internal/exitcode"
)

func main() {
	showVHIF := flag.Bool("vhif", false, "also print the VHIF intermediate representation")
	showTree := flag.Bool("tree", false, "print the branch-and-bound decision tree")
	spice := flag.Bool("spice", false, "print a SPICE deck of the op-amp macromodel expansion")
	area := flag.Bool("area", false, "print the per-component area report")
	sizing := flag.Bool("sizing", false, "print the transistor sizing report")
	fromVHIF := flag.Bool("from-vhif", false, "the input file is serialized VHIF, not VASS")
	benchmark := flag.String("benchmark", "", "synthesize a built-in benchmark")
	workers := flag.Int("workers", 0, "parallel search workers (0 = all CPUs, 1 = sequential)")
	lintFlag := flag.Bool("lint", false, "run the synthesizability linter before synthesis")
	werror := flag.Bool("Werror", false, "with -lint, treat warnings as errors")
	timeout := flag.Duration("timeout", 0, "deadline for the search; on expiry the best netlist found so far is printed (0 = none)")
	maxSteps := flag.Int("max-steps", 0, "search node budget; on exhaustion the best netlist so far is printed (0 = unlimited)")
	cacheDir := flag.String("cache-dir", "", "persist compile and synthesis artifacts in this directory (content-addressed, shareable across runs)")
	cacheStats := flag.Bool("cache-stats", false, "print the per-stage cache hit/miss table to stderr on exit")
	flag.Parse()

	opts := vase.DefaultSynthesisOptions()
	opts.Trace = *showTree
	opts.Workers = *workers
	opts.MaxNodes = *maxSteps

	pipe, err := vase.NewPipeline(vase.PipelineOptions{CacheDir: *cacheDir})
	if err != nil {
		fail(err)
	}
	if *cacheStats {
		defer func() { fmt.Fprint(os.Stderr, pipe.Stats()) }()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var arch *vase.Architecture
	if *fromVHIF {
		if len(flag.Args()) != 1 {
			usage(fmt.Errorf("usage: vase -from-vhif file.vhif"))
		}
		text, err := os.ReadFile(flag.Args()[0])
		if err != nil {
			usage(err)
		}
		m, err := vase.ParseVHIF(string(text))
		if err != nil {
			fail(err)
		}
		if *lintFlag || *werror {
			findings, err := vase.LintVHIFVia(context.Background(), pipe, flag.Args()[0], string(text), vase.LintOptions{})
			if err != nil {
				failSource(err, vase.Source{Name: flag.Args()[0], Text: string(text)})
			}
			if !reportFindings(findings, vase.Source{Name: flag.Args()[0], Text: string(text)}, *werror) {
				os.Exit(exitcode.Error)
			}
		}
		if *showVHIF {
			fmt.Print(m.Dump())
			fmt.Println()
		}
		arch, err = vase.SynthesizeModuleVia(ctx, pipe, m, opts)
		if err != nil {
			fail(err)
		}
	} else {
		src, err := loadSource(*benchmark, flag.Args())
		if err != nil {
			usage(err)
		}
		if *lintFlag || *werror {
			findings, err := vase.LintVia(context.Background(), pipe, src, vase.LintOptions{})
			if err != nil {
				failSource(err, src)
			}
			if !reportFindings(findings, src, *werror) {
				os.Exit(exitcode.Error)
			}
		}
		d, err := vase.CompileVia(context.Background(), pipe, src)
		if err != nil {
			fmt.Fprintln(os.Stderr, vase.RenderDiagnostics(err, src))
			os.Exit(exitcode.Error)
		}
		if *showVHIF {
			fmt.Print(d.VHIF.Dump())
			fmt.Println()
		}
		arch, err = d.SynthesizeContext(ctx, opts)
		if err != nil {
			fail(err)
		}
	}
	fmt.Print(arch.Netlist.Dump())
	fmt.Printf("\nsynthesis result: %s\n", arch.Netlist.Summary())
	fmt.Printf("op amps: %d, estimated area: %.0f um^2, power: %.2f mW\n",
		arch.Netlist.OpAmpCount(), arch.Report.AreaUm2, arch.Report.PowerMW)
	fmt.Printf("search: %d nodes visited, %d complete mappings, %d pruned (%.1f ms)\n",
		arch.Stats.NodesVisited, arch.Stats.CompleteMappings, arch.Stats.Pruned,
		float64(arch.Stats.Elapsed)/float64(time.Millisecond))
	if arch.Nonoptimal {
		fmt.Println("note: search budget expired — this is the best implementation found, not a proven optimum")
	}
	if arch.Cached {
		fmt.Println("note: netlist served from the synthesis cache (search stats describe the original run)")
	}

	if *area {
		fmt.Println("\nper-component area (um^2):")
		for name, a := range arch.Report.PerComponent {
			fmt.Printf("  %-24s %10.0f\n", name, a)
		}
	}
	if *sizing {
		sized, err := arch.Sizing()
		if err != nil {
			fail(err)
		}
		fmt.Println()
		fmt.Print(vase.FormatSizing(sized))
	}
	if *showTree {
		fmt.Println("\ndecision tree:")
		fmt.Print(formatTree(arch))
	}
	if *spice {
		deck, err := arch.SpiceDeck()
		if err != nil {
			fail(err)
		}
		fmt.Println("\nSPICE deck:")
		fmt.Print(deck)
	}
}

// reportFindings prints warning-or-worse findings to stderr and reports
// whether synthesis should proceed.
func reportFindings(findings vase.Diagnostics, src vase.Source, werror bool) bool {
	if werror {
		findings = findings.Promote()
	}
	shown := findings.Filter(vase.SeverityWarning)
	if len(shown) > 0 {
		fmt.Fprint(os.Stderr, vase.RenderDiagnostics(shown, src))
	}
	return !shown.HasErrors()
}

func formatTree(arch *vase.Architecture) string {
	if arch.Tree == nil {
		return "(no tree recorded)\n"
	}
	return vase.FormatDecisionTree(arch.Tree)
}

func loadSource(benchmark string, args []string) (vase.Source, error) {
	if benchmark != "" {
		app, err := vase.Benchmark(benchmark)
		if err != nil {
			return vase.Source{}, err
		}
		return vase.Source{Name: benchmark + ".vhd", Text: app.Source}, nil
	}
	if len(args) != 1 {
		return vase.Source{}, fmt.Errorf("usage: vase [flags] file.vhd (or -benchmark name)")
	}
	text, err := os.ReadFile(args[0])
	if err != nil {
		return vase.Source{}, err
	}
	return vase.Source{Name: args[0], Text: string(text)}, nil
}

func fail(err error) {
	exitcode.Fail("vase", exitcode.Error, err)
}

// failSource is fail for errors raised against a known source: diagnostics
// render with source excerpts and caret markers, every finding shown in
// deterministic order.
func failSource(err error, src vase.Source) {
	fmt.Fprintln(os.Stderr, vase.RenderDiagnostics(err, src))
	os.Exit(exitcode.Error)
}

func usage(err error) {
	exitcode.Fail("vase", exitcode.Usage, err)
}

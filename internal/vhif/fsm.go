package vhif

import (
	"fmt"

	"strings"
	"vase/internal/diag"
)

// ---------------------------------------------------------------------------
// Datapath expressions
//
// FSM states carry small data-path operations over control signals, process
// variables and events. DExpr is a minimal expression tree for them,
// independent of the front-end AST.

// DExpr is a datapath expression.
type DExpr interface {
	dexpr()
	String() string
}

// DConst is a literal: a real number or a bit.
type DConst struct {
	Value float64
	Bit   bool // value interpreted as bit when true
}

// DName references a signal, process variable or quantity by canonical name.
type DName struct {
	Name string
}

// DEvent is a threshold event: Quantity'above(Threshold).
type DEvent struct {
	Quantity  string
	Threshold float64
}

// DPortEvent is an event on an external signal port.
type DPortEvent struct {
	Port string
}

// DUnary is a prefix operation: "-", "not", "abs".
type DUnary struct {
	Op string
	X  DExpr
}

// DBinary is an infix operation with VASS operator spelling ("+", "and",
// "=", "<", ...).
type DBinary struct {
	Op   string
	X, Y DExpr
}

// DCall is a builtin function application in a datapath.
type DCall struct {
	Fun  string
	Args []DExpr
}

func (*DConst) dexpr()     {}
func (*DName) dexpr()      {}
func (*DEvent) dexpr()     {}
func (*DPortEvent) dexpr() {}
func (*DUnary) dexpr()     {}
func (*DBinary) dexpr()    {}
func (*DCall) dexpr()      {}

// String renders the datapath expression in VASS-like syntax.
func (e *DConst) String() string {
	if e.Bit {
		if e.Value != 0 {
			return "'1'"
		}
		return "'0'"
	}
	return fmt.Sprintf("%g", e.Value)
}

func (e *DName) String() string { return e.Name }

func (e *DEvent) String() string {
	return fmt.Sprintf("%s'above(%g)", e.Quantity, e.Threshold)
}

func (e *DPortEvent) String() string { return e.Port + "'event" }

func (e *DUnary) String() string {
	if e.Op == "not" || e.Op == "abs" {
		return e.Op + " " + e.X.String()
	}
	return e.Op + e.X.String()
}

func (e *DBinary) String() string {
	return "(" + e.X.String() + " " + e.Op + " " + e.Y.String() + ")"
}

func (e *DCall) String() string {
	var args []string
	for _, a := range e.Args {
		args = append(args, a.String())
	}
	return e.Fun + "(" + strings.Join(args, ", ") + ")"
}

// WalkDExpr traverses e depth-first.
func WalkDExpr(e DExpr, f func(DExpr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *DUnary:
		WalkDExpr(e.X, f)
	case *DBinary:
		WalkDExpr(e.X, f)
		WalkDExpr(e.Y, f)
	case *DCall:
		for _, a := range e.Args {
			WalkDExpr(a, f)
		}
	}
}

// ---------------------------------------------------------------------------
// FSM

// DataOp is one operation executed in a state: target := expr (variables)
// or target <= expr (signals).
type DataOp struct {
	Target   string
	SignalOp bool
	Expr     DExpr
}

// String renders the operation.
func (op *DataOp) String() string {
	arrow := ":="
	if op.SignalOp {
		arrow = "<="
	}
	return fmt.Sprintf("%s %s %s", op.Target, arrow, op.Expr)
}

// State is one FSM state holding a set of concurrent operations.
type State struct {
	ID   int
	Name string
	Ops  []*DataOp
}

// Arc is a guarded transition between states. Cond nil means an
// unconditional transition taken when the state's operations complete.
type Arc struct {
	From, To *State
	Cond     DExpr
}

// String renders the arc.
func (a *Arc) String() string {
	if a.Cond == nil {
		return fmt.Sprintf("%s -> %s", a.From.Name, a.To.Name)
	}
	return fmt.Sprintf("%s -> %s when %s", a.From.Name, a.To.Name, a.Cond)
}

// FSM is the event-driven part of a VHIF module: a start (suspended) state,
// a set of operation states, and guarded arcs. Resuming on an event is the
// arc from the start state guarded by the OR of sensitivity events.
type FSM struct {
	Name   string
	States []*State
	Arcs   []*Arc
	Start  *State
}

// NewFSM returns an FSM with a start state representing process suspension.
func NewFSM(name string) *FSM {
	f := &FSM{Name: name}
	f.Start = f.NewState("start")
	return f
}

// NewState appends a state.
func (f *FSM) NewState(name string) *State {
	s := &State{ID: len(f.States), Name: name}
	if s.Name == "" {
		s.Name = fmt.Sprintf("state%d", s.ID)
	}
	f.States = append(f.States, s)
	return s
}

// AddArc appends a guarded transition.
func (f *FSM) AddArc(from, to *State, cond DExpr) *Arc {
	a := &Arc{From: from, To: to, Cond: cond}
	f.Arcs = append(f.Arcs, a)
	return a
}

// ArcsFrom returns the arcs leaving s in insertion order.
func (f *FSM) ArcsFrom(s *State) []*Arc {
	var out []*Arc
	for _, a := range f.Arcs {
		if a.From == s {
			out = append(out, a)
		}
	}
	return out
}

// DatapathCount is the paper's "data-path" metric: the number of distinct
// operation elements (comparisons, arithmetic operators, function elements)
// used by the FSM's states and guards. Pure moves (target <= constant or
// name) contribute nothing.
func (f *FSM) DatapathCount() int {
	seen := map[string]bool{}
	count := func(e DExpr) {
		WalkDExpr(e, func(x DExpr) {
			switch x := x.(type) {
			case *DBinary:
				seen["bin:"+x.Op+":"+x.X.String()+":"+x.Y.String()] = true
			case *DUnary:
				if x.Op != "-" {
					seen["un:"+x.Op+":"+x.X.String()] = true
				}
			case *DCall:
				seen["call:"+x.String()] = true
			case *DEvent:
				seen["event:"+x.String()] = true
			}
		})
	}
	for _, s := range f.States {
		for _, op := range s.Ops {
			count(op.Expr)
		}
	}
	for _, a := range f.Arcs {
		if a.From != f.Start { // the resume guard re-uses the state ops' events
			count(a.Cond)
		}
	}
	return len(seen)
}

// Validate checks FSM invariants: the start state exists, arcs connect
// states of this FSM, and every non-start state is reachable from start.
func (f *FSM) Validate() error {
	if f.Start == nil {
		return diag.Errorf(diag.CodeFSMStructure, "vhif: fsm %q has no start state", f.Name)
	}
	index := map[*State]bool{}
	for _, s := range f.States {
		index[s] = true
	}
	adj := map[*State][]*State{}
	for _, a := range f.Arcs {
		if !index[a.From] || !index[a.To] {
			return diag.Errorf(diag.CodeFSMStructure, "vhif: fsm %q arc %s references a foreign state", f.Name, a)
		}
		adj[a.From] = append(adj[a.From], a.To)
	}
	reach := map[*State]bool{f.Start: true}
	queue := []*State{f.Start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, t := range adj[s] {
			if !reach[t] {
				reach[t] = true
				queue = append(queue, t)
			}
		}
	}
	for _, s := range f.States {
		if !reach[s] {
			return diag.Errorf(diag.CodeFSMStructure, "vhif: fsm %q state %q is unreachable from start", f.Name, s.Name)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Module

// PortDir is the direction of a module port.
type PortDir int

// Port directions.
const (
	DirIn PortDir = iota
	DirOut
)

// PortKind distinguishes analog quantity ports from event signal ports.
type PortKind int

// Port kinds.
const (
	PortQuantity PortKind = iota
	PortSignal
)

// Port is an external connection of a VHIF module, with the synthesis
// attributes carried over from the VASS annotations.
type Port struct {
	Name    string
	Dir     PortDir
	Kind    PortKind
	Voltage bool // facet: voltage (true) or current (false)
	// Output stage requirements from annotations.
	Limited    bool
	LimitAt    float64
	DrivesOhms float64
	PeakDrive  float64
	Impedance  float64
	// Signal-property annotations ("is frequency lo to hi",
	// "is range lo to hi"), used to derive the system specification.
	FreqLo, FreqHi   float64
	RangeLo, RangeHi float64
}

// ControlLink connects an FSM-computed signal to the control inputs it
// drives in the signal-flow graphs.
type ControlLink struct {
	Signal string // canonical signal name
	Net    *Net   // control net in a graph
}

// Module is a complete VHIF design: signal-flow graphs for the
// continuous-time part, FSMs for the event-driven part, and the control
// links between them.
type Module struct {
	Name     string
	Ports    []*Port
	Graphs   []*Graph
	FSMs     []*FSM
	Controls []*ControlLink
}

// Port returns the named port or nil.
func (m *Module) Port(name string) *Port {
	for _, p := range m.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// BlockCount is the Table 1 "nr. blocks" metric over all graphs.
func (m *Module) BlockCount() int {
	n := 0
	for _, g := range m.Graphs {
		n += g.OpBlockCount()
	}
	return n
}

// StateCount is the Table 1 "nr. states" metric over all FSMs.
func (m *Module) StateCount() int {
	n := 0
	for _, f := range m.FSMs {
		n += len(f.States)
	}
	return n
}

// DatapathCount is the Table 1 "data-path" metric: the number of datapath
// elements materialized from the event-driven part — the comparator and
// Schmitt-trigger blocks the FSM's operations reduce to.
func (m *Module) DatapathCount() int {
	n := 0
	for _, g := range m.Graphs {
		for _, b := range g.Blocks {
			if b.FromFSM && b.Kind != BNot {
				n++
			}
		}
	}
	return n
}

// Validate checks the whole module.
func (m *Module) Validate() error {
	for _, g := range m.Graphs {
		if err := g.Validate(); err != nil {
			return diag.Wrapf(err, "module %q", m.Name)
		}
	}
	for _, f := range m.FSMs {
		if err := f.Validate(); err != nil {
			return diag.Wrapf(err, "module %q", m.Name)
		}
	}
	for _, c := range m.Controls {
		if c.Net == nil {
			return diag.Errorf(diag.CodeVHIFLink, "module %q: control link for signal %q has no net", m.Name, c.Signal)
		}
		if !c.Net.Control {
			return diag.Errorf(diag.CodeVHIFLink, "module %q: control link for signal %q drives a non-control net", m.Name, c.Signal)
		}
	}
	return nil
}

package estimate

import (
	"fmt"
	"math"
)

// Topology identifies an op-amp circuit topology from the component
// library. Component selection — the VASE flow step after architecture
// synthesis (Figure 1) — picks, per instance, the cheapest topology that
// meets the instance's requirements.
type Topology int

// The op-amp topologies.
const (
	// TwoStage is the Miller-compensated two-stage amplifier: high gain,
	// rail-ish swing, needs a compensation capacitor.
	TwoStage Topology = iota
	// SingleStageOTA is a single-stage transconductance amplifier: lower
	// gain and swing, no compensation cap (load-compensated), smaller and
	// faster for light duties such as comparators and followers.
	SingleStageOTA
)

// String returns the topology name.
func (t Topology) String() string {
	switch t {
	case TwoStage:
		return "two-stage Miller"
	case SingleStageOTA:
		return "single-stage OTA"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// maxOTAGainDB is the open-loop gain a single-stage OTA can reach in this
// process (gm*ro of one stage with long channels).
const maxOTAGainDB = 45

// DesignOTA sizes a single-stage OTA for the spec. The load capacitor is
// the compensation: UGF = gm/(2*pi*CL), SR = Itail/CL.
func DesignOTA(p Process, spec OpAmpSpec) (OpAmpDesign, error) {
	d := OpAmpDesign{Spec: spec}
	if spec.UGF <= 0 || spec.SlewRate <= 0 || spec.LoadCap <= 0 {
		return d, fmt.Errorf("estimate: OTA spec requires positive UGF, slew rate and load (got %+v)", spec)
	}
	if spec.GainDB > maxOTAGainDB {
		return d, fmt.Errorf("estimate: %g dB exceeds a single-stage OTA (max %d dB)", spec.GainDB, maxOTAGainDB)
	}
	if spec.LoadRes > 0 {
		return d, fmt.Errorf("estimate: an OTA cannot drive a resistive load")
	}
	d.Cc = 0 // load-compensated
	d.ITail = spec.SlewRate * spec.LoadCap
	const iMin = 2e-6
	if d.ITail < iMin {
		d.ITail = iMin
	}
	gm := 2 * math.Pi * spec.UGF * spec.LoadCap
	wl1 := gm * gm / (p.KPn * d.ITail)
	if wl1 < 1 {
		wl1 = 1
	}
	l := 2 * p.Lmin
	// Single-stage gain: gm*ro.
	ro := 1 / ((p.LambdaN + p.LambdaP) / 2 * d.ITail / 2)
	d.AchievedGainDB = 20 * math.Log10(gm*ro)
	if d.AchievedGainDB < spec.GainDB {
		need := math.Pow(10, (spec.GainDB-d.AchievedGainDB)/20)
		l *= need // single-stage gain is ~linear in L in this model
		d.AchievedGainDB = spec.GainDB
		if l > 50 {
			return d, fmt.Errorf("estimate: OTA gain of %g dB not realizable", spec.GainDB)
		}
	}
	// Five transistors: differential pair, mirror loads, tail (plus bias
	// references to fill the canonical array).
	dims := [8]float64{wl1, wl1, wl1 / 2, wl1 / 2, wl1, 2, 2, 2}
	var devArea float64
	for i, wl := range dims {
		d.L[i] = l
		d.W[i] = math.Max(wl*l, p.Wmin)
		devArea += d.W[i] * d.L[i]
	}
	d.AreaUm2 = devArea * p.Overhead
	d.Power = d.ITail * p.Vdd
	d.AchievedUGF = gm / (2 * math.Pi * spec.LoadCap)
	d.AchievedSR = d.ITail / spec.LoadCap
	return d, nil
}

// SelectTopology performs component selection for one op-amp instance: it
// sizes every library topology that can meet the spec and returns the
// minimum-area design with its topology.
func SelectTopology(p Process, spec OpAmpSpec) (Topology, OpAmpDesign, error) {
	best := Topology(-1)
	var bestD OpAmpDesign
	consider := func(t Topology, d OpAmpDesign, err error) {
		if err != nil {
			return
		}
		if best < 0 || d.AreaUm2 < bestD.AreaUm2 {
			best, bestD = t, d
		}
	}
	d2, err2 := DesignOpAmp(p, spec)
	consider(TwoStage, d2, err2)
	d1, err1 := DesignOTA(p, spec)
	consider(SingleStageOTA, d1, err1)
	if best < 0 {
		if err2 != nil {
			return 0, OpAmpDesign{}, err2
		}
		return 0, OpAmpDesign{}, err1
	}
	return best, bestD, nil
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vase/internal/pipeline"
)

const mixerSrc = `
entity mixer is
  port (
    quantity a : in real is voltage;
    quantity b : in real is voltage;
    quantity y : out real is voltage
  );
end entity;
architecture beh of mixer is
begin
  y == 3.0 * a + 2.0 * b;
end architecture;
`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Pipeline == nil {
		p, err := pipeline.New(pipeline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Pipeline = p
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, s *Server, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	if rec.Body.Len() > 0 && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("%s: invalid JSON response %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec, out
}

func TestParseEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := post(t, s, "/v1/parse", map[string]any{"name": "mixer.vhd", "source": mixerSrc})
	if rec.Code != http.StatusOK {
		t.Fatalf("parse: status %d, body %s", rec.Code, rec.Body)
	}
	if out["entity"] != "mixer" {
		t.Errorf("entity = %v, want mixer", out["entity"])
	}
	if v, _ := out["vhif"].(string); !strings.Contains(v, "module mixer") {
		t.Errorf("vhif text missing module header: %.60q", v)
	}
	if out["cached"] != false {
		t.Errorf("first parse reported cached=%v", out["cached"])
	}
	// Second request hits the shared cache.
	rec, out = post(t, s, "/v1/parse", map[string]any{"name": "mixer.vhd", "source": mixerSrc})
	if rec.Code != http.StatusOK || out["cached"] != true {
		t.Errorf("second parse: status %d cached=%v, want 200 cached=true", rec.Code, out["cached"])
	}
}

func TestParseBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	// Unknown field -> 400 (the HTTP analogue of exit 2).
	rec, _ := post(t, s, "/v1/parse", map[string]any{"source": mixerSrc, "bogus": 1})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", rec.Code)
	}
	// Missing source -> 400.
	rec, _ = post(t, s, "/v1/parse", map[string]any{"name": "x.vhd"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing source: status %d, want 400", rec.Code)
	}
	// Compile errors -> 422 (exit 1) with structured diagnostics.
	rec, out := post(t, s, "/v1/parse", map[string]any{"source": "entity broken is end entity;"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Errorf("broken source: status %d, want 422 (body %s)", rec.Code, rec.Body)
	}
	if _, hasErr := out["error"]; !hasErr {
		t.Error("error body missing the error message")
	}
	// GET -> 405.
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, httptest.NewRequest(http.MethodGet, "/v1/parse", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET parse: status %d, want 405", rec2.Code)
	}
}

func TestLintEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := post(t, s, "/v1/lint", map[string]any{"name": "mixer.vhd", "source": mixerSrc})
	if rec.Code != http.StatusOK {
		t.Fatalf("lint: status %d, body %s", rec.Code, rec.Body)
	}
	if _, ok := out["findings"]; !ok {
		t.Error("lint response missing findings")
	}
	// Requiring both or neither input is a 400.
	rec, _ = post(t, s, "/v1/lint", map[string]any{"name": "x"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("lint without source: status %d, want 400", rec.Code)
	}
}

func TestSynthesizeEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := post(t, s, "/v1/synthesize", map[string]any{"name": "mixer.vhd", "source": mixerSrc})
	if rec.Code != http.StatusOK {
		t.Fatalf("synthesize: status %d, body %s", rec.Code, rec.Body)
	}
	if nl, _ := out["netlist"].(string); !strings.Contains(nl, "netlist mixer") {
		t.Errorf("netlist dump missing header: %.60q", nl)
	}
	if out["degraded"] != false {
		t.Errorf("unconstrained synthesis reported degraded=%v", out["degraded"])
	}
	if ops, _ := out["op_amps"].(float64); ops < 1 {
		t.Errorf("op_amps = %v, want >= 1", out["op_amps"])
	}
}

// TestSynthesizeConcurrentSharedCache is the tentpole acceptance test:
// concurrent synthesize requests with identical and distinct keys through
// one server compute each distinct key exactly once and return
// byte-identical netlists for identical keys.
func TestSynthesizeConcurrentSharedCache(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Pipeline: p, MaxConcurrent: 8, QueueDepth: 64, QueueWait: 10 * time.Second})

	const clientsPerSpec = 8
	specs := []string{mixerSrc, strings.Replace(mixerSrc, "3.0", "4.0", 1)}
	netlists := make([][]string, len(specs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for si, src := range specs {
		for c := 0; c < clientsPerSpec; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rec, out := post(t, s, "/v1/synthesize", map[string]any{"name": "mixer.vhd", "source": src})
				if rec.Code != http.StatusOK {
					t.Errorf("spec %d: status %d, body %s", si, rec.Code, rec.Body)
					return
				}
				mu.Lock()
				netlists[si] = append(netlists[si], out["netlist"].(string))
				mu.Unlock()
			}()
		}
	}
	wg.Wait()

	for si := range specs {
		if len(netlists[si]) != clientsPerSpec {
			t.Fatalf("spec %d: %d successful responses, want %d", si, len(netlists[si]), clientsPerSpec)
		}
		for _, nl := range netlists[si] {
			if nl != netlists[si][0] {
				t.Errorf("spec %d: concurrent clients saw different netlist bytes", si)
				break
			}
		}
	}
	if netlists[0][0] == netlists[1][0] {
		t.Error("distinct sources returned identical netlists")
	}
	st := p.Stats().Stage(pipeline.StageMap)
	if st.Misses != uint64(len(specs)) {
		t.Errorf("map stage computed %d times for %d distinct keys (stats %+v)", st.Misses, len(specs), st)
	}
}

// TestSaturationSheds verifies the 429 + Retry-After contract: with every
// run slot held and no queue, a request is refused immediately.
func TestSaturationSheds(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	// Occupy the only run slot.
	release, herr := s.adm.admit(context.Background())
	if herr != nil {
		t.Fatalf("priming admit failed: %+v", herr)
	}
	defer release()

	rec, out := post(t, s, "/v1/parse", map[string]any{"source": mixerSrc})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, want 429 (body %s)", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if _, ok := out["error"]; !ok {
		t.Error("429 body missing error message")
	}
}

// TestQueueTimeout verifies the bounded-queue path: a request that queues
// longer than QueueWait gets 503 + Retry-After.
func TestQueueTimeout(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1, QueueWait: 30 * time.Millisecond})
	release, herr := s.adm.admit(context.Background())
	if herr != nil {
		t.Fatalf("priming admit failed: %+v", herr)
	}
	defer release()

	rec, _ := post(t, s, "/v1/parse", map[string]any{"source": mixerSrc})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued past deadline: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
}

// TestDegradedNeverCached drives the anytime contract end to end: a
// truncated search answers 206 with degraded=true, and the result is NOT
// served from cache to the next caller — a full-budget request recomputes.
func TestDegradedNeverCached(t *testing.T) {
	p, err := pipeline.New(pipeline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Pipeline: p})

	rec, out := post(t, s, "/v1/synthesize", map[string]any{
		"name": "mixer.vhd", "source": mixerSrc, "max_nodes": 1,
	})
	if rec.Code != http.StatusPartialContent {
		t.Fatalf("truncated search: status %d, want 206 (body %s)", rec.Code, rec.Body)
	}
	if out["degraded"] != true {
		t.Errorf("truncated search reported degraded=%v", out["degraded"])
	}
	if nl, _ := out["netlist"].(string); nl == "" {
		t.Error("degraded response carries no incumbent netlist")
	}

	// The degraded answer must not have been cached: the full request runs
	// the search itself (cached=false) and reports a clean optimum.
	rec, out = post(t, s, "/v1/synthesize", map[string]any{"name": "mixer.vhd", "source": mixerSrc})
	if rec.Code != http.StatusOK {
		t.Fatalf("full search after degraded: status %d", rec.Code)
	}
	if out["cached"] != false {
		t.Error("full search was served the degraded cached result")
	}
	if out["degraded"] != false {
		t.Error("full search still degraded")
	}
	st := p.Stats().Stage(pipeline.StageMap)
	if st.Degraded != 1 {
		t.Errorf("map stage recorded %d degraded computations, want 1", st.Degraded)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := post(t, s, "/v1/simulate", map[string]any{
		"name":   "mixer.vhd",
		"source": mixerSrc,
		"inputs": map[string]string{"a": "dc:1", "b": "dc:2"},
		"tstop":  1e-4,
		"tstep":  1e-6,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("simulate: status %d, body %s", rec.Code, rec.Body)
	}
	times, _ := out["time"].([]any)
	if len(times) == 0 {
		t.Fatal("simulate returned no samples")
	}
	signals, _ := out["signals"].(map[string]any)
	ys, _ := signals["y"].([]any)
	if len(ys) != len(times) {
		t.Fatalf("y has %d samples for %d times", len(ys), len(times))
	}
	// y == 3*1 + 2*2 = 7 at steady state.
	if got := ys[len(ys)-1].(float64); got < 6.9 || got > 7.1 {
		t.Errorf("final y = %g, want ~7", got)
	}
	// A bad waveform spec is a 400.
	rec, _ = post(t, s, "/v1/simulate", map[string]any{
		"source": mixerSrc, "inputs": map[string]string{"a": "square:1"},
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad waveform: status %d, want 400", rec.Code)
	}
}

func TestSimulateSSE(t *testing.T) {
	s := newTestServer(t, Config{})
	body, _ := json.Marshal(map[string]any{
		"name":   "mixer.vhd",
		"source": mixerSrc,
		"inputs": map[string]string{"a": "dc:1", "b": "dc:2"},
		"tstop":  1e-5,
		"tstep":  1e-6,
		"stream": true,
		"every":  2,
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("SSE simulate: status %d, body %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{"event: header", `"signals":["a","b","y"]`, "event: sample", `"t":`, "event: done", `"truncated":false`} {
		if !strings.Contains(out, want) {
			t.Errorf("SSE stream missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "event: sample"); n == 0 {
		t.Error("SSE stream carried no samples")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: -1})
	// Generate one of each outcome: a success and a shed.
	rec, _ := post(t, s, "/v1/parse", map[string]any{"source": mixerSrc})
	if rec.Code != http.StatusOK {
		t.Fatalf("warmup parse failed: %d", rec.Code)
	}
	release, _ := s.adm.admit(context.Background())
	recShed, _ := post(t, s, "/v1/parse", map[string]any{"source": mixerSrc})
	release()
	if recShed.Code != http.StatusTooManyRequests {
		t.Fatalf("shed request: %d, want 429", recShed.Code)
	}

	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", mrec.Code)
	}
	out := mrec.Body.String()
	for _, want := range []string{
		"vased_shed_total 1",
		`vased_requests_total{endpoint="parse",code="200"} 1`,
		`vased_requests_total{endpoint="parse",code="429"} 1`,
		`vase_stage_requests_total{stage="compile",kind="miss"} 1`,
		`vase_stage_compute_seconds_bucket{stage="compile",le="+Inf"} 1`,
		"vased_worker_budget",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestSchedulerLease(t *testing.T) {
	s := newScheduler(4)
	if got := s.lease(3); got != 3 {
		t.Fatalf("lease(3) = %d, want 3", got)
	}
	if got := s.lease(3); got != 1 {
		t.Fatalf("lease(3) with 1 available = %d, want 1", got)
	}
	// Budget exhausted: the floor guarantees one worker, oversubscribing.
	if got := s.lease(5); got != 1 {
		t.Fatalf("lease(5) with 0 available = %d, want 1", got)
	}
	if avail := s.available(); avail != -1 {
		t.Fatalf("available = %d, want -1", avail)
	}
	s.release(3)
	s.release(1)
	s.release(1)
	if avail := s.available(); avail != 4 {
		t.Fatalf("after release, available = %d, want 4", avail)
	}
}

func TestAdmissionCancelledWhileQueued(t *testing.T) {
	a := newAdmission(1, 1, time.Minute)
	release, herr := a.admit(context.Background())
	if herr != nil {
		t.Fatal(herr)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the second request is queued.
		for a.depth() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, herr = a.admit(ctx)
	if herr == nil || herr.status != http.StatusGatewayTimeout {
		t.Fatalf("cancelled while queued: %+v, want 504", herr)
	}
	if a.depth() != 0 {
		t.Errorf("queue depth %d after departure, want 0", a.depth())
	}
}

// TestWorkersGrantedUnderLoad checks the scheduler is actually wired into
// the synthesize path: a request on a 1-worker budget runs sequentially.
func TestWorkersGrantedUnderLoad(t *testing.T) {
	s := newTestServer(t, Config{WorkerBudget: 1})
	rec, out := post(t, s, "/v1/synthesize", map[string]any{
		"name": "mixer.vhd", "source": mixerSrc, "workers": 8,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("synthesize: status %d", rec.Code)
	}
	search, _ := out["search"].(map[string]any)
	if w, _ := search["workers"].(float64); w != 1 {
		t.Errorf("search ran with %v workers on a budget of 1", search["workers"])
	}
	if s.sched.available() != 1 {
		t.Errorf("workers not returned to the pool: available = %d", s.sched.available())
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	s := newTestServer(t, Config{})
	// An already-expired request context: the pipeline reports a context
	// error, which the server maps to 504.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data, _ := json.Marshal(map[string]any{"source": mixerSrc + "-- variant for a cold key\n"})
	req := httptest.NewRequest(http.MethodPost, "/v1/parse", bytes.NewReader(data)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	// Admission sees the dead context while "queueing" only if saturated;
	// otherwise the pipeline compile fails with the context error.
	if rec.Code != http.StatusGatewayTimeout && rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("expired context: status %d, want 504 (or 422 if the front end won the race)", rec.Code)
	}
}

func ExampleConfig() {
	p, _ := pipeline.New(pipeline.Options{})
	s, _ := New(Config{Pipeline: p, MaxConcurrent: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, _ := http.Get(ts.URL + "/healthz")
	fmt.Println(resp.StatusCode)
	// Output: 200
}

// TestSimulateCircuitLevel exercises the MNA branch of /v1/simulate: the
// design is synthesized and its op-amp macromodel integrated, in either
// solver tier, with fast-tier results served from the spice stage's memo
// on repeat and stay within the error budget of the exact tier.
func TestSimulateCircuitLevel(t *testing.T) {
	s := newTestServer(t, Config{})
	req := map[string]any{
		"name":   "mixer.vhd",
		"source": mixerSrc,
		"inputs": map[string]string{"a": "dc:0.1", "b": "dc:0.2"},
		"tstop":  1e-4,
		"tstep":  1e-6,
		"level":  "circuit",
	}
	rec, out := post(t, s, "/v1/simulate", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("circuit simulate: status %d, body %s", rec.Code, rec.Body)
	}
	signals, _ := out["signals"].(map[string]any)
	ys, _ := signals["y"].([]any)
	if len(ys) == 0 {
		t.Fatalf("no y waveform in %v", out)
	}
	// y = 3*0.1 + 2*0.2 = 0.7 at steady state.
	exact := ys[len(ys)-1].(float64)
	if exact < 0.65 || exact > 0.75 {
		t.Errorf("final y = %g, want ~0.7", exact)
	}
	spiceStats := s.pipe.Stats().Stage(pipeline.StageSpice)
	if spiceStats.Misses != 1 {
		t.Errorf("spice stage counters = %+v, want 1 miss", spiceStats)
	}

	// The fast tier is a different artifact (its own key) but must land
	// within the default budget of the exact result.
	req["solver"] = "fast"
	rec, out = post(t, s, "/v1/simulate", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fast circuit simulate: status %d, body %s", rec.Code, rec.Body)
	}
	signals, _ = out["signals"].(map[string]any)
	ys, _ = signals["y"].([]any)
	fast := ys[len(ys)-1].(float64)
	if diff := fast - exact; diff < -1e-3 || diff > 1e-3 {
		t.Errorf("fast tier y = %g, exact %g", fast, exact)
	}

	// Repeating the fast request is a spice-stage cache hit.
	rec, _ = post(t, s, "/v1/simulate", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat fast simulate: status %d", rec.Code)
	}
	if st := s.pipe.Stats().Stage(pipeline.StageSpice); st.Hits == 0 {
		t.Errorf("repeat request did not hit the spice memo: %+v", st)
	}
}

// TestSimulateSolverValidation pins the shared solveropt error contract at
// the HTTP boundary: an unknown tier is a 400 listing the valid names, and
// solver fields on a behavioral request are rejected rather than ignored.
func TestSimulateSolverValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	rec, out := post(t, s, "/v1/simulate", map[string]any{
		"source": mixerSrc,
		"inputs": map[string]string{"a": "dc:0", "b": "dc:0"},
		"level":  "circuit",
		"solver": "sparse",
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown solver: status %d, want 400", rec.Code)
	}
	msg, _ := out["error"].(string)
	for _, want := range []string{"sparse", "reference", "exact", "fast"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not mention %q", msg, want)
		}
	}
	rec, _ = post(t, s, "/v1/simulate", map[string]any{
		"source": mixerSrc,
		"inputs": map[string]string{"a": "dc:0", "b": "dc:0"},
		"solver": "fast",
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("solver on behavioral level: status %d, want 400", rec.Code)
	}
	rec, _ = post(t, s, "/v1/simulate", map[string]any{
		"source": mixerSrc,
		"inputs": map[string]string{"a": "dc:0", "b": "dc:0"},
		"level":  "orbital",
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown level: status %d, want 400", rec.Code)
	}
}

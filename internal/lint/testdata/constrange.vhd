entity range_demo is
  port (
    quantity vin : in real is voltage range -1.0 to 1.0;
    quantity vq  : out real is range -1.0 to 1.0;
    quantity vo  : out real
  );
end entity;

architecture behavioral of range_demo is
  signal over : bit;
begin
  vq == 5.0;
  vo == 2.0 * vin;
  process (vin'above(5.0)) is
  begin
    over <= '1';
  end process;
end architecture;

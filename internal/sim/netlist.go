package sim

import (
	"context"
	"fmt"
	"math"

	"vase/internal/library"
	"vase/internal/netlist"
)

// SimulateNetlist runs a functional transient analysis of a synthesized
// component netlist: every library cell evaluates its ideal transfer
// function, integrators integrate with RK4, and detectors carry hysteresis.
// It verifies that a mapped architecture still computes the specified
// behavior (the paper's Section 6 check before SPICE-level simulation).
func SimulateNetlist(nl *netlist.Netlist, inputs map[string]Source, opts Options) (*Trace, error) {
	return SimulateNetlistContext(context.Background(), nl, inputs, opts)
}

// SimulateNetlistContext is SimulateNetlist under a context: cancellation
// is observed between RK4 steps and returns the truncated trace computed
// so far (Trace.Truncated) rather than an error.
func SimulateNetlistContext(ctx context.Context, nl *netlist.Netlist, inputs map[string]Source, opts Options) (*Trace, error) {
	s, err := newNetSim(nl, inputs, opts)
	if err != nil {
		return nil, err
	}
	return s.run(ctx)
}

// netState is one dynamic component: integrator (1 state), low-pass filter
// (1 state), band-pass filter (2 states), or — under ModelBandwidth — an
// amplifier with its closed-loop pole (1 state, pole > 0).
type netState struct {
	c      *netlist.Component
	offset int
	n      int
	pole   float64 // closed-loop pole, rad/s (0 for exact elements)
}

// ampPole derives the closed-loop pole of a sized amplifier: omega =
// 2*pi*UGF / noiseGain, with the inverting noise gain 1 + sum|w_i|.
func (s *netSim) ampPole(c *netlist.Component) float64 {
	noise := 1.0
	switch c.Cell.Kind {
	case library.CellInvAmp, library.CellNonInvAmp:
		noise += math.Abs(c.Param("gain", 1))
	case library.CellPGA:
		noise += math.Max(math.Abs(c.Param("gain_on", 1)), math.Abs(c.Param("gain_off", 1)))
	default:
		for i := range c.Inputs {
			noise += math.Abs(c.Param(fmt.Sprintf("gain%d", i), 1))
		}
	}
	return 2 * math.Pi * c.Estimate.OpAmps[0].AchievedUGF / noise
}

// ampIdeal computes the instantaneous ideal output of an amplifier cell.
func ampIdeal(c *netlist.Component, vals map[*netlist.Net]float64) float64 {
	in := func(i int) float64 {
		if i < len(c.Inputs) {
			return vals[c.Inputs[i]]
		}
		return 0
	}
	switch c.Cell.Kind {
	case library.CellInvAmp, library.CellNonInvAmp:
		return c.Param("gain", 1) * in(0)
	case library.CellFollower:
		return in(0)
	case library.CellPGA:
		g := c.Param("gain_off", 1)
		if c.Ctrl != nil && vals[c.Ctrl] > 0.5 {
			g = c.Param("gain_on", 1)
		}
		return g * in(0)
	default: // summing / difference amplifiers
		out := 0.0
		for i := range c.Inputs {
			out += c.Param(fmt.Sprintf("gain%d", i), 1) * in(i)
		}
		return out
	}
}

type netSim struct {
	nl    *netlist.Netlist
	opts  Options
	order []*netlist.Component
	srcs  map[*netlist.Net]Source
	// dynamic components in order.
	states  []netState
	nStates int

	cmpState map[*netlist.Component]bool
	shState  map[*netlist.Component]float64
	prevIn   map[*netlist.Component]float64

	probes map[string]*netlist.Net
	// byName resolves any net for Options.OnSample probes.
	byName map[string]*netlist.Net

	// vals is eval's single scratch buffer, reused (cleared, not
	// reallocated) across the four derivative evaluations of every RK4
	// step; see eval for the aliasing contract.
	vals map[*netlist.Net]float64
}

func newNetSim(nl *netlist.Netlist, inputs map[string]Source, opts Options) (*netSim, error) {
	if opts.TStop <= 0 || opts.TStep <= 0 {
		return nil, fmt.Errorf("sim: TStop and TStep must be positive")
	}
	s := &netSim{
		nl:       nl,
		opts:     opts,
		srcs:     map[*netlist.Net]Source{},
		cmpState: map[*netlist.Component]bool{},
		shState:  map[*netlist.Component]float64{},
		prevIn:   map[*netlist.Component]float64{},
		probes:   map[string]*netlist.Net{},
	}
	for _, p := range nl.Ports {
		if p.Dir == netlist.In {
			src, ok := inputs[p.Name]
			if !ok {
				return nil, fmt.Errorf("sim: no source for netlist input %q", p.Name)
			}
			s.srcs[p.Net] = src
		} else {
			s.probes[p.Name] = p.Net
		}
	}
	for _, name := range opts.Probes {
		for _, n := range nl.Nets {
			if n.Name == name {
				s.probes[name] = n
			}
		}
	}
	valid := map[string]bool{}
	for _, n := range nl.Nets {
		valid[n.Name] = true
	}
	for name := range s.probes { //vase:unordered (per-key set insertion)
		valid[name] = true
	}
	if err := checkProbes(opts.Probes, valid); err != nil {
		return nil, err
	}
	var err error
	s.order, err = nl.Topological()
	if err != nil {
		return nil, err
	}
	s.byName = map[string]*netlist.Net{}
	for _, n := range nl.Nets {
		s.byName[n.Name] = n
	}
	for name, n := range s.probes { //vase:unordered (per-key writes; probe names are unique)
		s.byName[name] = n
	}
	for _, c := range s.order {
		switch {
		case c.Cell.Kind == library.CellIntegrator || c.Cell.Kind == library.CellLowPass:
			s.states = append(s.states, netState{c: c, offset: s.nStates, n: 1})
			s.nStates++
		case c.Cell.Kind == library.CellBandPass:
			s.states = append(s.states, netState{c: c, offset: s.nStates, n: 2})
			s.nStates += 2
		case opts.ModelBandwidth && c.Cell.Kind.IsAmplifier() && c.Estimate != nil && len(c.Estimate.OpAmps) > 0:
			// Finite gain-bandwidth: the amplifier output lags its ideal
			// value with a closed-loop pole at UGF/noise-gain.
			s.states = append(s.states, netState{c: c, offset: s.nStates, n: 1, pole: s.ampPole(c)})
			s.nStates++
		}
	}
	return s, nil
}

// eval computes every net value at (t, x) in topological order. The returned
// map is the simulator's shared scratch buffer: it is valid until the next
// eval call, which clears and refills it in place. Every caller finishes
// reading its map before triggering another evaluation (the run loop probes
// and updates discrete state between derivative evaluations, never across
// them), so reuse is safe and the per-call allocation — once per RK4
// substep, on every step — disappears.
func (s *netSim) eval(t float64, x []float64) map[*netlist.Net]float64 {
	if s.vals == nil {
		s.vals = make(map[*netlist.Net]float64, len(s.nl.Nets))
	}
	vals := s.vals
	clear(vals)
	for _, net := range s.nl.Nets {
		if net.Const != nil {
			vals[net] = *net.Const
		}
	}
	for net, src := range s.srcs { //vase:unordered (per-key writes of pure source values)
		vals[net] = src(t)
	}
	stateIdx := 0
	boolv := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	for _, c := range s.order {
		in := func(i int) float64 {
			if i < len(c.Inputs) {
				return vals[c.Inputs[i]]
			}
			return 0
		}
		ctrl := func() bool { return vals[c.Ctrl] > 0.5 }
		var out float64
		if s.opts.ModelBandwidth && c.Cell.Kind.IsAmplifier() &&
			stateIdx < len(s.states) && s.states[stateIdx].c == c {
			out = x[s.states[stateIdx].offset]
			stateIdx++
			if c.Out != nil {
				vals[c.Out] = out
			}
			continue
		}
		switch c.Cell.Kind {
		case library.CellInvAmp, library.CellNonInvAmp:
			out = c.Param("gain", 1) * in(0)
		case library.CellFollower:
			out = in(0)
		case library.CellSummingAmp, library.CellDiffAmp:
			for i := range c.Inputs {
				out += c.Param(fmt.Sprintf("gain%d", i), 1) * in(i)
			}
		case library.CellPGA:
			g := c.Param("gain_off", 1)
			if ctrl() {
				g = c.Param("gain_on", 1)
			}
			out = g * in(0)
		case library.CellIntegrator, library.CellLowPass:
			out = x[s.states[stateIdx].offset]
			stateIdx++
		case library.CellBandPass:
			st := s.states[stateIdx]
			stateIdx++
			q := netBandpassQ(c)
			out = x[st.offset] / q
		case library.CellDiff:
			out = (in(0) - s.prevIn[c]) / s.opts.TStep
		case library.CellLogAmp:
			out = c.Param("scale", 1) * safeLog(in(0))
		case library.CellAntilogAmp:
			out = c.Param("scale", 1) * clampExp(in(0))
		case library.CellMultiplier:
			out = in(0) * in(1)
		case library.CellDivider:
			out = safeDiv(in(0), in(1))
		case library.CellSqrt:
			out = math.Sqrt(math.Max(0, in(0)))
		case library.CellRectifier:
			out = math.Abs(in(0))
		case library.CellMinMax:
			if c.Param("op", 0) > 0.5 {
				out = math.Max(in(0), in(1))
			} else {
				out = math.Min(in(0), in(1))
			}
		case library.CellSineShaper:
			out = math.Sin(in(0))
		case library.CellComparator, library.CellSchmitt:
			v := s.cmpState[c]
			if c.Param("invert", 0) > 0.5 {
				v = !v
			}
			out = boolv(v)
		case library.CellSampleHold:
			// Clocked semantics matching the VHIF simulator: the output is
			// the previous sample.
			out = s.shState[c]
		case library.CellSwitch:
			if ctrl() {
				out = in(0)
			}
		case library.CellMux:
			if ctrl() {
				out = in(0)
			} else {
				out = in(1)
			}
		case library.CellADC:
			bits := c.Param("bits", 8)
			const fullScale = 2.5
			q := fullScale / math.Exp2(bits-1)
			v := math.Max(-fullScale, math.Min(fullScale, in(0)))
			out = math.Round(v/q) * q
		case library.CellOutputStage:
			out = in(0)
			if lim := c.Param("limit", 0); lim > 0 {
				out = math.Max(-lim, math.Min(lim, out))
			}
		case library.CellLimiter:
			lim := c.Param("limit", 1.5)
			out = math.Max(-lim, math.Min(lim, in(0)))
		}
		if c.Out != nil {
			vals[c.Out] = out
		}
	}
	return vals
}

func (s *netSim) derivs(t float64, x []float64) []float64 {
	vals := s.eval(t, x)
	d := make([]float64, s.nStates)
	for _, st := range s.states {
		c := st.c
		switch c.Cell.Kind {
		case library.CellIntegrator:
			sum := 0.0
			for j := range c.Inputs {
				sum += c.Param(fmt.Sprintf("gain%d", j), 1) * vals[c.Inputs[j]]
			}
			d[st.offset] = sum
		case library.CellLowPass:
			wc := 2 * math.Pi * c.Param("fhi", 1)
			d[st.offset] = wc * (vals[c.Inputs[0]] - x[st.offset])
		case library.CellBandPass:
			w0 := 2 * math.Pi * math.Sqrt(c.Param("fhi", 1)*c.Param("flo", 1))
			q := netBandpassQ(c)
			bp, lp := x[st.offset], x[st.offset+1]
			hp := vals[c.Inputs[0]] - lp - bp/q
			d[st.offset] = w0 * hp
			d[st.offset+1] = w0 * bp
		default:
			if st.pole > 0 {
				d[st.offset] = st.pole * (ampIdeal(c, vals) - x[st.offset])
			}
		}
	}
	return d
}

// netBandpassQ mirrors the VHIF filter's quality derivation.
func netBandpassQ(c *netlist.Component) float64 {
	fhi, flo := c.Param("fhi", 1), c.Param("flo", 0)
	f0 := math.Sqrt(fhi * flo)
	bw := fhi - flo
	if bw <= 0 {
		return 1
	}
	q := f0 / bw
	if q < 0.3 {
		q = 0.3
	}
	return q
}

func (s *netSim) updateDiscrete(vals map[*netlist.Net]float64) {
	for _, c := range s.order {
		switch c.Cell.Kind {
		case library.CellComparator, library.CellSchmitt:
			v := vals[c.Inputs[0]]
			th := c.Param("threshold", 0)
			hyst := c.Param("hysteresis", 0)
			st := s.cmpState[c]
			if st {
				if v < th-hyst {
					s.cmpState[c] = false
				}
			} else if v > th+hyst {
				s.cmpState[c] = true
			}
		case library.CellSampleHold:
			if vals[c.Ctrl] > 0.5 {
				s.shState[c] = vals[c.Inputs[0]]
			}
		}
	}
}

// updateDifferentiators stores the start-of-step input values so the next
// step's backward difference spans exactly one step.
func (s *netSim) updateDifferentiators(vals map[*netlist.Net]float64) {
	for _, c := range s.order {
		if c.Cell.Kind == library.CellDiff {
			s.prevIn[c] = vals[c.Inputs[0]]
		}
	}
}

func (s *netSim) initDiscrete(vals map[*netlist.Net]float64) {
	for _, c := range s.order {
		switch c.Cell.Kind {
		case library.CellComparator, library.CellSchmitt:
			s.cmpState[c] = vals[c.Inputs[0]] > c.Param("threshold", 0)
		case library.CellSampleHold:
			s.shState[c] = vals[c.Inputs[0]]
		case library.CellDiff:
			s.prevIn[c] = vals[c.Inputs[0]]
		}
	}
}

func (s *netSim) run(ctx context.Context) (*Trace, error) {
	n := int(math.Ceil(s.opts.TStop/s.opts.TStep)) + 1
	tr := &Trace{Signals: map[string][]float64{}}
	x := make([]float64, s.nStates)
	v0 := s.eval(0, x)
	s.initDiscrete(v0)

	h := s.opts.TStep
	st := newStopper(ctx, s.opts)
	for step := 0; step < n; step++ {
		if st.stop(step) {
			tr.Truncated = true
			break
		}
		t := float64(step) * h
		vals := s.eval(t, x)
		tr.Time = append(tr.Time, t)
		for name, net := range s.probes { //vase:unordered (per-key append into the probe's own series)
			tr.Signals[name] = append(tr.Signals[name], vals[net])
		}
		if s.opts.OnSample != nil {
			// vals is the shared scratch buffer: it is valid until the next
			// eval call, so the monitors must run before the RK4 substeps.
			s.opts.OnSample(t, func(name string) (float64, bool) {
				n, ok := s.byName[name]
				if !ok {
					return 0, false
				}
				return vals[n], true
			})
		}
		s.updateDifferentiators(vals)
		k1 := s.derivs(t, x)
		k2 := s.derivs(t+h/2, axpy(x, k1, h/2))
		k3 := s.derivs(t+h/2, axpy(x, k2, h/2))
		k4 := s.derivs(t+h, axpy(x, k3, h))
		for i := range x {
			x[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				return nil, fmt.Errorf("sim: netlist state %d diverged at t=%g", i, t)
			}
		}
		end := s.eval(t+h, x)
		s.updateDiscrete(end)
	}
	return tr, nil
}

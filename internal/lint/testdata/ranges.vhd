entity range_lint is
  port (
    quantity vin  : in real is voltage range 2.0 to 3.0;
    quantity vout : out real is voltage
  );
end entity;

-- assert: always v(vout) >= 10.0
-- assert: always 1.0 > 0.0
-- assert: bound ghost in -1.0 .. 1.0

architecture behavioral of range_lint is
  constant g1  : real := 0.5;
  constant g2  : real := 0.25;
  constant Vth : real := 1.0;
  quantity rv, scratch : real;
  signal sel : bit;
begin
  vout == 6.0 * vin * rv;
  scratch == 2.0 * vin;
  if (sel = '1') use rv == g1;
  else rv == g2;
  end use;
  process (vin'above(Vth)) is begin
    if (vin'above(Vth) = true) then sel <= '1';
    else sel <= '0'; end if;
  end process;
end architecture;

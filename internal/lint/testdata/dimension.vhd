entity dim_demo is
  port (
    quantity v1 : in real is voltage;
    quantity i1 : in real is current;
    quantity vo : out real is voltage
  );
end entity;

architecture behavioral of dim_demo is
begin
  vo == v1 + i1;
end architecture;

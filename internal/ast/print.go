package ast

import (
	"fmt"
	"strconv"
	"strings"

	"vase/internal/token"
)

// ExprString renders an expression in VASS concrete syntax. It is used by
// diagnostics, the VHIF dumper, and golden tests.
func ExprString(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeExpr(b *strings.Builder, e Expr) {
	switch e := e.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Name:
		b.WriteString(e.Ident.Name)
	case *IntLit:
		if e.Text != "" {
			b.WriteString(e.Text)
		} else {
			b.WriteString(strconv.FormatInt(e.Value, 10))
		}
	case *RealLit:
		if e.Text != "" {
			b.WriteString(e.Text)
		} else {
			b.WriteString(strconv.FormatFloat(e.Value, 'g', -1, 64))
		}
	case *BitLit:
		if e.Value {
			b.WriteString("'1'")
		} else {
			b.WriteString("'0'")
		}
	case *StrLit:
		fmt.Fprintf(b, "%q", e.Value)
	case *Unary:
		switch e.Op {
		case token.NOT, token.ABS:
			b.WriteString(e.Op.String())
			b.WriteByte(' ')
		default:
			b.WriteString(e.Op.String())
		}
		writeExpr(b, e.X)
	case *Binary:
		writeExpr(b, e.X)
		b.WriteByte(' ')
		b.WriteString(e.Op.String())
		b.WriteByte(' ')
		writeExpr(b, e.Y)
	case *Paren:
		b.WriteByte('(')
		writeExpr(b, e.X)
		b.WriteByte(')')
	case *Call:
		b.WriteString(e.Fun.Name)
		b.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a)
		}
		b.WriteByte(')')
	case *ErrorExpr:
		b.WriteString("<error>")
	case *Attribute:
		writeExpr(b, e.X)
		b.WriteByte('\'')
		b.WriteString(e.Attr)
		if len(e.Args) > 0 {
			b.WriteByte('(')
			for i, a := range e.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				writeExpr(b, a)
			}
			b.WriteByte(')')
		}
	default:
		fmt.Fprintf(b, "<%T>", e)
	}
}

// Printer renders a design file back to VASS concrete syntax. The output is
// canonical (lower-case keywords, normalized spacing) and reparses to an
// equivalent tree, which the parser round-trip tests rely on.
type Printer struct {
	b      strings.Builder
	indent int
}

// FileString renders an entire design file.
func FileString(f *DesignFile) string {
	var p Printer
	for i, u := range f.Units {
		if i > 0 {
			p.b.WriteByte('\n')
		}
		p.unit(u)
	}
	return p.b.String()
}

func (p *Printer) line(format string, args ...any) {
	p.b.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *Printer) unit(u DesignUnit) {
	switch u := u.(type) {
	case *Entity:
		p.line("entity %s is", u.Name.Name)
		if len(u.Ports) > 0 {
			p.indent++
			p.line("port (")
			p.indent++
			for i, d := range u.Ports {
				sep := ";"
				if i == len(u.Ports)-1 {
					sep = ""
				}
				p.line("%s%s", p.objectDecl(d), sep)
			}
			p.indent--
			p.line(");")
			p.indent--
		}
		p.line("end entity;")
	case *Architecture:
		p.line("architecture %s of %s is", u.Name.Name, u.Entity.Name)
		p.indent++
		for _, d := range u.Decls {
			p.decl(d)
		}
		p.indent--
		p.line("begin")
		p.indent++
		for _, s := range u.Stmts {
			p.conc(s)
		}
		p.indent--
		p.line("end architecture;")
	case *Package:
		p.line("package %s is", u.Name.Name)
		p.indent++
		for _, d := range u.Decls {
			p.decl(d)
		}
		p.indent--
		p.line("end package;")
	case *PackageBody:
		p.line("package body %s is", u.Name.Name)
		p.indent++
		for _, d := range u.Decls {
			p.decl(d)
		}
		p.indent--
		p.line("end package body;")
	case *LibClause:
		// Library/use clauses carry no semantics; canonical output omits
		// them, exactly as the pre-recovery parser dropped them.
	case *ErrorUnit:
		p.line("-- <error: skipped design unit>")
	}
}

func (p *Printer) objectDecl(d *ObjectDecl) string {
	var b strings.Builder
	b.WriteString(d.Class.String())
	b.WriteByte(' ')
	for i, id := range d.Names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(id.Name)
	}
	b.WriteString(" : ")
	if d.Mode != ModeNone {
		b.WriteString(d.Mode.String())
		b.WriteByte(' ')
	}
	b.WriteString(p.typeRef(d.Type))
	if d.Init != nil {
		b.WriteString(" := ")
		b.WriteString(ExprString(d.Init))
	}
	for _, a := range d.Annotations {
		b.WriteByte(' ')
		b.WriteString(annotationString(a))
	}
	return b.String()
}

func annotationString(a *Annotation) string {
	var b strings.Builder
	b.WriteString("is ")
	b.WriteString(a.Name)
	// Re-emit the connective words of each annotation form so the output
	// reparses: "limited at x", "drives z at v peak", "frequency lo to hi".
	switch a.Name {
	case "limited":
		if len(a.Args) == 1 {
			b.WriteString(" at ")
			b.WriteString(ExprString(a.Args[0]))
		}
	case "drives":
		if len(a.Args) >= 1 {
			b.WriteByte(' ')
			b.WriteString(ExprString(a.Args[0]))
		}
		if len(a.Args) >= 2 {
			b.WriteString(" at ")
			b.WriteString(ExprString(a.Args[1]))
			b.WriteString(" peak")
		}
	case "frequency", "range":
		if len(a.Args) == 2 {
			b.WriteByte(' ')
			b.WriteString(ExprString(a.Args[0]))
			b.WriteString(" to ")
			b.WriteString(ExprString(a.Args[1]))
		}
	default:
		for _, e := range a.Args {
			b.WriteByte(' ')
			b.WriteString(ExprString(e))
		}
	}
	return b.String()
}

func (p *Printer) typeRef(t *TypeRef) string {
	if t == nil {
		return "<nil>"
	}
	s := t.Name.Name
	if t.Constraint != nil {
		dir := "to"
		if t.Constraint.Down {
			dir = "downto"
		}
		s += fmt.Sprintf("(%s %s %s)", ExprString(t.Constraint.Lo), dir, ExprString(t.Constraint.Hi))
	}
	return s
}

func (p *Printer) decl(d Decl) {
	switch d := d.(type) {
	case *ObjectDecl:
		p.line("%s;", p.objectDecl(d))
	case *FunctionDecl:
		var params []string
		for _, pd := range d.Params {
			params = append(params, p.objectDecl(pd))
		}
		p.line("function %s(%s) return %s is", d.Name.Name, strings.Join(params, "; "), p.typeRef(d.Result))
		p.indent++
		for _, dd := range d.Decls {
			p.decl(dd)
		}
		p.indent--
		p.line("begin")
		p.indent++
		for _, s := range d.Body {
			p.seq(s)
		}
		p.indent--
		p.line("end function;")
	case *ErrorDecl:
		p.line("-- <error: skipped declaration>")
	}
}

func (p *Printer) conc(s ConcStmt) {
	switch s := s.(type) {
	case *SimpleSimultaneous:
		if s.Label != "" {
			p.line("%s: %s == %s;", s.Label, ExprString(s.LHS), ExprString(s.RHS))
		} else {
			p.line("%s == %s;", ExprString(s.LHS), ExprString(s.RHS))
		}
	case *SimultaneousIf:
		p.line("if %s use", ExprString(s.Cond))
		p.indent++
		for _, t := range s.Then {
			p.conc(t)
		}
		p.indent--
		for _, e := range s.Elifs {
			p.line("elsif %s use", ExprString(e.Cond))
			p.indent++
			for _, t := range e.Then {
				p.conc(t)
			}
			p.indent--
		}
		if len(s.Else) > 0 {
			p.line("else")
			p.indent++
			for _, t := range s.Else {
				p.conc(t)
			}
			p.indent--
		}
		p.line("end use;")
	case *SimultaneousCase:
		p.line("case %s use", ExprString(s.Expr))
		p.indent++
		for _, a := range s.Arms {
			p.line("when %s =>", choicesString(a.Choices))
			p.indent++
			for _, t := range a.Conc {
				p.conc(t)
			}
			p.indent--
		}
		p.indent--
		p.line("end case;")
	case *Procedural:
		if s.Label != "" {
			p.line("%s: procedural is", s.Label)
		} else {
			p.line("procedural is")
		}
		p.indent++
		for _, d := range s.Decls {
			p.decl(d)
		}
		p.indent--
		p.line("begin")
		p.indent++
		for _, st := range s.Body {
			p.seq(st)
		}
		p.indent--
		p.line("end procedural;")
	case *Process:
		var sens []string
		for _, e := range s.Sensitivity {
			sens = append(sens, ExprString(e))
		}
		head := "process"
		if s.Label != "" {
			head = s.Label + ": process"
		}
		if len(sens) > 0 {
			head += " (" + strings.Join(sens, ", ") + ")"
		}
		p.line("%s is", head)
		p.indent++
		for _, d := range s.Decls {
			p.decl(d)
		}
		p.indent--
		p.line("begin")
		p.indent++
		for _, st := range s.Body {
			p.seq(st)
		}
		p.indent--
		p.line("end process;")
	case *ErrorConc:
		p.line("-- <error: skipped concurrent statement>")
	}
}

func choicesString(choices []Expr) string {
	if choices == nil {
		return "others"
	}
	var parts []string
	for _, c := range choices {
		parts = append(parts, ExprString(c))
	}
	return strings.Join(parts, " | ")
}

func (p *Printer) seq(s SeqStmt) {
	switch s := s.(type) {
	case *Assign:
		op := ":="
		if s.SignalOp {
			op = "<="
		}
		p.line("%s %s %s;", ExprString(s.LHS), op, ExprString(s.RHS))
	case *IfStmt:
		p.line("if %s then", ExprString(s.Cond))
		p.indent++
		for _, t := range s.Then {
			p.seq(t)
		}
		p.indent--
		for _, e := range s.Elifs {
			p.line("elsif %s then", ExprString(e.Cond))
			p.indent++
			for _, t := range e.Then {
				p.seq(t)
			}
			p.indent--
		}
		if len(s.Else) > 0 {
			p.line("else")
			p.indent++
			for _, t := range s.Else {
				p.seq(t)
			}
			p.indent--
		}
		p.line("end if;")
	case *CaseStmt:
		p.line("case %s is", ExprString(s.Expr))
		p.indent++
		for _, a := range s.Arms {
			p.line("when %s =>", choicesString(a.Choices))
			p.indent++
			for _, t := range a.Seq {
				p.seq(t)
			}
			p.indent--
		}
		p.indent--
		p.line("end case;")
	case *ForStmt:
		dir := "to"
		if s.Range.Down {
			dir = "downto"
		}
		p.line("for %s in %s %s %s loop", s.Var.Name, ExprString(s.Range.Lo), dir, ExprString(s.Range.Hi))
		p.indent++
		for _, t := range s.Body {
			p.seq(t)
		}
		p.indent--
		p.line("end loop;")
	case *WhileStmt:
		p.line("while %s loop", ExprString(s.Cond))
		p.indent++
		for _, t := range s.Body {
			p.seq(t)
		}
		p.indent--
		p.line("end loop;")
	case *ReturnStmt:
		if s.Value != nil {
			p.line("return %s;", ExprString(s.Value))
		} else {
			p.line("return;")
		}
	case *NullStmt:
		p.line("null;")
	case *ErrorStmt:
		p.line("-- <error: skipped statement>")
	}
}

package corpus

import (
	"math"
	"testing"

	"vase/internal/compile"
	"vase/internal/library"
	"vase/internal/mapper"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/sim"
	"vase/internal/vhif"
)

func buildExtra(t *testing.T, key string) (*vhif.Module, *mapper.Result) {
	t.Helper()
	var app *ExtraApplication
	for _, a := range Extras() {
		if a.Key == key {
			app = a
		}
	}
	if app == nil {
		t.Fatalf("no extra design %q", key)
	}
	df, err := parser.Parse(key+".vhd", app.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m, err := compile.Compile(d)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := mapper.Synthesize(m, mapper.DefaultOptions())
	if err != nil {
		t.Fatalf("synthesize: %v", err)
	}
	return m, res
}

func TestExtrasAllSynthesize(t *testing.T) {
	for _, app := range Extras() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			_, res := buildExtra(t, app.Key)
			if res.Netlist == nil || len(res.Netlist.Components) == 0 {
				t.Fatal("empty netlist")
			}
			if res.Report.AreaUm2 <= 0 {
				t.Error("no area estimate")
			}
		})
	}
}

func TestPIDStepResponse(t *testing.T) {
	m, res := buildExtra(t, "pid")
	// The architecture uses an integrator and a differentiator.
	if res.Netlist.CountKind(library.CellIntegrator) != 1 {
		t.Errorf("integrators = %d, want 1", res.Netlist.CountKind(library.CellIntegrator))
	}
	if res.Netlist.CountKind(library.CellDiff) != 1 {
		t.Errorf("differentiators = %d, want 1", res.Netlist.CountKind(library.CellDiff))
	}
	// Constant error e: u(t) = kp*e + ki*e*t (the integral ramps).
	tr, err := sim.SimulateModule(m, map[string]sim.Source{
		"sp": sim.DC(1.0),
		"pv": sim.DC(0.5),
	}, sim.Options{TStop: 0.1, TStep: 1e-5})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	// e = 0.5; at t=0.1: u = 2*0.5 + 8*0.5*0.1 = 1.4.
	if got := tr.Final("u"); math.Abs(got-1.4) > 0.01 {
		t.Errorf("u(0.1) = %g, want 1.4", got)
	}
}

func TestSVFDCGainAndDynamics(t *testing.T) {
	m, _ := buildExtra(t, "svf")
	// DC: lp settles to the input, bp and hp to zero.
	tr, err := sim.SimulateModule(m, map[string]sim.Source{
		"vin": sim.DC(0.8),
	}, sim.Options{TStop: 0.01, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if got := tr.Final("lp"); math.Abs(got-0.8) > 0.01 {
		t.Errorf("lp DC = %g, want 0.8", got)
	}
	if got := tr.Final("bp"); math.Abs(got) > 0.01 {
		t.Errorf("bp DC = %g, want 0", got)
	}
	if got := tr.Final("hp"); math.Abs(got) > 0.01 {
		t.Errorf("hp DC = %g, want 0", got)
	}
}

func TestSVFHighFrequencyRejection(t *testing.T) {
	m, _ := buildExtra(t, "svf")
	// Drive far above the corner (w = 6283 rad/s -> f0 = 1 kHz): the
	// low-pass output is strongly attenuated, the high-pass follows.
	tr, err := sim.SimulateModule(m, map[string]sim.Source{
		"vin": sim.Sine(1.0, 20e3, 0),
	}, sim.Options{TStop: 2e-3, TStep: 1e-7})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	lp := tr.Get("lp")
	// Look at the second half (past the transient).
	peak := 0.0
	for _, v := range lp[len(lp)/2:] {
		peak = math.Max(peak, math.Abs(v))
	}
	if peak > 0.05 {
		t.Errorf("lp peak at 20x corner = %g, want < 0.05 (40 dB/dec roll-off)", peak)
	}
}

func TestSVFAnnotationWidensBandwidth(t *testing.T) {
	// The "is frequency 0 to 50000" annotation must drive the estimator:
	// the derived system bandwidth exceeds the audio default.
	m, _ := buildExtra(t, "svf")
	found := false
	for _, p := range m.Ports {
		if p.Name == "vin" && p.FreqHi == 50000 {
			found = true
		}
	}
	if !found {
		t.Fatal("frequency annotation not carried to the VHIF port")
	}
}

func TestEnvelopeDetector(t *testing.T) {
	m, res := buildExtra(t, "envelope")
	if res.Netlist.CountKind(library.CellRectifier) != 1 {
		t.Errorf("rectifiers = %d, want 1", res.Netlist.CountKind(library.CellRectifier))
	}
	// A 10 kHz carrier of amplitude A: the averaged rectified value is
	// 2A/pi.
	tr, err := sim.SimulateModule(m, map[string]sim.Source{
		"vin": sim.Sine(1.0, 10e3, 0),
	}, sim.Options{TStop: 20e-3, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	want := 2 / math.Pi
	if got := tr.Final("env"); math.Abs(got-want) > 0.05 {
		t.Errorf("envelope = %g, want %g (2A/pi)", got, want)
	}
}

func TestRatioMeter(t *testing.T) {
	m, res := buildExtra(t, "ratiometer")
	if res.Netlist.CountKind(library.CellDivider) != 1 {
		t.Fatalf("dividers = %d, want 1", res.Netlist.CountKind(library.CellDivider))
	}
	tr, err := sim.SimulateModule(m, map[string]sim.Source{
		"num": sim.DC(1.2),
		"den": sim.DC(0.4),
	}, sim.Options{TStop: 1e-4, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if got := tr.Final("r"); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("ratio = %g, want 3", got)
	}
}

func TestSqrtExtractor(t *testing.T) {
	m, res := buildExtra(t, "sqrt")
	if res.Netlist.CountKind(library.CellSqrt) != 1 {
		t.Fatalf("sqrt cells = %d, want 1", res.Netlist.CountKind(library.CellSqrt))
	}
	tr, err := sim.SimulateModule(m, map[string]sim.Source{
		"u": sim.DC(2.25),
	}, sim.Options{TStop: 1e-4, TStep: 1e-6})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if got := tr.Final("y"); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("sqrt(2.25) = %g, want 1.5", got)
	}
}

func TestWindowDetectorCaseUse(t *testing.T) {
	m, _ := buildExtra(t, "window")
	// Inside the window (vin above 0.5): unity path; below: attenuated.
	for _, c := range []struct{ vin, want float64 }{
		{0.8, 0.8},
		{0.2, 0.02},
	} {
		tr, err := sim.SimulateModule(m, map[string]sim.Source{
			"vin": sim.DC(c.vin),
		}, sim.Options{TStop: 1e-4, TStep: 1e-6})
		if err != nil {
			t.Fatalf("simulate: %v", err)
		}
		if got := tr.Final("vout"); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("vin=%g: vout = %g, want %g", c.vin, got, c.want)
		}
	}
}

func TestExtrasModuleNetlistEquivalence(t *testing.T) {
	inputs := map[string]map[string]sim.Source{
		"pid":        {"sp": sim.Sine(0.5, 200, 0), "pv": sim.DC(0.1)},
		"svf":        {"vin": sim.Sine(0.5, 1e3, 0)},
		"envelope":   {"vin": sim.Sine(1.0, 10e3, 0)},
		"ratiometer": {"num": sim.Sine(0.5, 1e3, 0), "den": sim.DC(0.5)},
		"sqrt":       {"u": sim.DC(4.0)},
		"window":     {"vin": sim.Sine(1.0, 500, 0)},
	}
	for _, app := range Extras() {
		app := app
		t.Run(app.Key, func(t *testing.T) {
			m, res := buildExtra(t, app.Key)
			opts := sim.Options{TStop: 4e-3, TStep: 1e-6}
			trM, err := sim.SimulateModule(m, inputs[app.Key], opts)
			if err != nil {
				t.Fatalf("module sim: %v", err)
			}
			trN, err := sim.SimulateNetlist(res.Netlist, inputs[app.Key], opts)
			if err != nil {
				t.Fatalf("netlist sim: %v", err)
			}
			for _, p := range m.Ports {
				if p.Dir != vhif.DirOut || p.Kind != vhif.PortQuantity {
					continue
				}
				a, b := trM.Get(p.Name), trN.Get(p.Name)
				scale := math.Max(1, trM.Max(p.Name)-trM.Min(p.Name))
				for i := range a {
					if math.Abs(a[i]-b[i]) > 0.02*scale {
						t.Fatalf("%s diverges at t=%g: %g vs %g",
							p.Name, trM.Time[i], a[i], b[i])
					}
				}
			}
		})
	}
}

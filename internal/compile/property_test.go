package compile

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vase/internal/mapper"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/sim"
)

// randExpr generates a random arithmetic expression over the inputs and
// returns both its VASS text and its value under the given input values.
func randExpr(rng *rand.Rand, depth int, inputs map[string]float64) (string, float64) {
	names := []string{"u1", "u2", "u3"}
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			n := names[rng.Intn(len(names))]
			return n, inputs[n]
		default:
			v := math.Round(rng.Float64()*40-20) / 4 // quarter-integer constants
			return fmt.Sprintf("%.2f", v), v
		}
	}
	a, av := randExpr(rng, depth-1, inputs)
	b, bv := randExpr(rng, depth-1, inputs)
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b), av + bv
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b), av - bv
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b), av * bv
	case 3:
		return fmt.Sprintf("(-(%s))", a), -av
	default:
		k := math.Round(rng.Float64()*16-8) / 2
		return fmt.Sprintf("(%.1f * %s)", k, a), k * av
	}
}

// TestCompiledExpressionsEvaluateCorrectly is the end-to-end property: any
// random arithmetic expression compiled through the full pipeline
// (parse -> analyze -> compile -> behavioral simulation) produces the value
// of direct evaluation.
func TestCompiledExpressionsEvaluateCorrectly(t *testing.T) {
	inputs := map[string]float64{"u1": 0.3, "u2": -0.7, "u3": 1.25}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		exprText, want := randExpr(rng, 4, inputs)
		if math.Abs(want) > 1e6 {
			return true // skip numerically wild cases
		}
		src := fmt.Sprintf(`
entity prop is
  port (quantity u1, u2, u3 : in real; quantity y : out real);
end entity;
architecture a of prop is
begin
  y == %s;
end architecture;`, exprText)
		df, err := parser.Parse("prop.vhd", src)
		if err != nil {
			t.Logf("seed %d: parse: %v\n%s", seed, err, src)
			return false
		}
		d, err := sema.AnalyzeOne(df)
		if err != nil {
			t.Logf("seed %d: analyze: %v\n%s", seed, err, src)
			return false
		}
		m, err := Compile(d)
		if err != nil {
			t.Logf("seed %d: compile: %v\n%s", seed, err, src)
			return false
		}
		tr, err := sim.SimulateModule(m, map[string]sim.Source{
			"u1": sim.DC(inputs["u1"]),
			"u2": sim.DC(inputs["u2"]),
			"u3": sim.DC(inputs["u3"]),
		}, sim.Options{TStop: 1e-5, TStep: 1e-6})
		if err != nil {
			t.Logf("seed %d: simulate: %v\n%s", seed, err, src)
			return false
		}
		got := tr.Final("y")
		tol := 1e-9 * math.Max(1, math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Logf("seed %d: %s = %g, want %g", seed, exprText, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestCompiledDAEIsolationProperty: linear equations a*y + b == c*u solved
// for y match the closed form for random coefficients.
func TestCompiledDAEIsolationProperty(t *testing.T) {
	check := func(ai, bi, ci uint8) bool {
		a := float64(ai%9) + 1 // 1..9
		bcoef := float64(bi%19) - 9
		ccoef := float64(ci%19) - 9
		u := 0.45
		src := fmt.Sprintf(`
entity lin is
  port (quantity u : in real; quantity y : out real);
end entity;
architecture arch of lin is
begin
  %g * y + %g == %g * u;
end architecture;`, a, bcoef, ccoef)
		df, err := parser.Parse("lin.vhd", src)
		if err != nil {
			return false
		}
		d, err := sema.AnalyzeOne(df)
		if err != nil {
			return false
		}
		m, err := Compile(d)
		if err != nil {
			t.Logf("compile a=%g b=%g c=%g: %v", a, bcoef, ccoef, err)
			return false
		}
		tr, err := sim.SimulateModule(m, map[string]sim.Source{"u": sim.DC(u)},
			sim.Options{TStop: 1e-5, TStep: 1e-6})
		if err != nil {
			return false
		}
		want := (ccoef*u - bcoef) / a
		return math.Abs(tr.Final("y")-want) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestForUnrollEquivalence: an unrolled accumulation loop equals its closed
// form for random static bounds.
func TestForUnrollEquivalence(t *testing.T) {
	for n := 1; n <= 8; n++ {
		src := fmt.Sprintf(`
entity acc is
  port (quantity u : in real; quantity y : out real);
end entity;
architecture arch of acc is
begin
  procedural is
    variable s : real;
  begin
    s := 0.0 * u;
    for i in 1 to %d loop
      s := s + u * i;
    end loop;
    y := s;
  end procedural;
end architecture;`, n)
		df, err := parser.Parse("acc.vhd", src)
		if err != nil {
			t.Fatal(err)
		}
		d, err := sema.AnalyzeOne(df)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Compile(d)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.SimulateModule(m, map[string]sim.Source{"u": sim.DC(2)},
			sim.Options{TStop: 1e-5, TStep: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n * (n + 1)) // 2 * sum(1..n)
		if got := tr.Final("y"); math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: y = %g, want %g", n, got, want)
		}
	}
}

// TestWhileLoopConvergesToFixpoint: the Figure 4 sampling structure settles
// at the loop's exit value for inputs above and below the threshold.
func TestWhileLoopConvergesToFixpoint(t *testing.T) {
	src := `
entity halver is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of halver is
begin
  procedural is
    variable acc : real;
  begin
    acc := a;
    while acc > 1.0 loop
      acc := acc * 0.5;
    end loop;
    y := acc;
  end procedural;
end architecture;`
	df, err := parser.Parse("halver.vhd", src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []float64{0.4, 3.0, 13.0} {
		tr, err := sim.SimulateModule(m, map[string]sim.Source{"a": sim.DC(a)},
			sim.Options{TStop: 2e-3, TStep: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		// Expected: repeatedly halve until <= 1.
		want := a
		for want > 1.0 {
			want *= 0.5
		}
		got := tr.Final("y")
		if math.Abs(got-want) > 0.05 {
			t.Errorf("a=%g: while-loop output = %g, want %g", a, got, want)
		}
	}
}

// TestSimultaneousIfArmsMatchMux checks that every branch of a 3-way
// selection produces the correct value.
func TestSimultaneousIfArmsMatchMux(t *testing.T) {
	src := `
entity sel3 is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture arch of sel3 is
  signal hi, lo : bit;
begin
  if (hi = '1') use y == 3.0 * x;
  elsif (lo = '1') use y == 2.0 * x;
  else y == x;
  end use;
  process (x'above(2.0)) is begin
    hi <= x'above(2.0);
  end process;
  process (x'above(1.0)) is begin
    lo <= x'above(1.0);
  end process;
end architecture;`
	df, err := parser.Parse("sel3.vhd", src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0.5}, // both low: y = x
		{1.5, 3.0}, // lo only: y = 2x
		{2.5, 7.5}, // hi: y = 3x
		{-1.0, -1.0},
	}
	for _, c := range cases {
		tr, err := sim.SimulateModule(m, map[string]sim.Source{"x": sim.DC(c.x)},
			sim.Options{TStop: 1e-4, TStep: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.Final("y"); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("x=%g: y = %g, want %g\n%s", c.x, got, c.want,
				strings.TrimSpace(m.Dump()))
		}
	}
}

// TestSynthesisPreservesRandomExpressions is the end-to-end synthesis
// property: for random arithmetic expressions, the branch-and-bound-mapped
// netlist simulates to the same value as direct evaluation — pattern
// absorption, sharing and transformations never change semantics.
func TestSynthesisPreservesRandomExpressions(t *testing.T) {
	inputs := map[string]float64{"u1": 0.35, "u2": -0.6, "u3": 1.1}
	rng := rand.New(rand.NewSource(20260706))
	cases := 0
	for cases < 40 {
		exprText, want := randExpr(rng, 3, inputs)
		if math.Abs(want) > 1e4 {
			continue
		}
		src := fmt.Sprintf(`
entity prop is
  port (quantity u1, u2, u3 : in real; quantity y : out real);
end entity;
architecture a of prop is
begin
  y == %s;
end architecture;`, exprText)
		df, err := parser.Parse("prop.vhd", src)
		if err != nil {
			t.Fatalf("parse %q: %v", exprText, err)
		}
		d, err := sema.AnalyzeOne(df)
		if err != nil {
			t.Fatalf("analyze %q: %v", exprText, err)
		}
		m, err := Compile(d)
		if err != nil {
			t.Fatalf("compile %q: %v", exprText, err)
		}
		res, err := mapper.Synthesize(m, mapper.DefaultOptions())
		if err != nil {
			// Gains outside every cell's range are legitimately unmappable.
			if strings.Contains(err.Error(), "no feasible mapping") {
				continue
			}
			t.Fatalf("synthesize %q: %v", exprText, err)
		}
		tr, err := sim.SimulateNetlist(res.Netlist, map[string]sim.Source{
			"u1": sim.DC(inputs["u1"]),
			"u2": sim.DC(inputs["u2"]),
			"u3": sim.DC(inputs["u3"]),
		}, sim.Options{TStop: 1e-5, TStep: 1e-6})
		if err != nil {
			t.Fatalf("netlist sim %q: %v", exprText, err)
		}
		got := tr.Final("y")
		tol := 1e-9 * math.Max(1, math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Errorf("%s: netlist = %g, want %g\n%s", exprText, got, want, res.Netlist.Dump())
		}
		cases++
	}
}

// Package project elaborates a multi-file VASS project incrementally.
//
// A project is an ordered set of named source files. Check parses every file
// with the error-recovering parser, builds the cross-file elaboration
// environment (all packages, in file order), resolves cross-file
// entity/architecture references, and analyzes each design unit — all
// through the pipeline's content-addressed memo, so a one-line edit re-runs
// only the units whose inputs actually changed:
//
//   - re-parse is per file, keyed on (name, text);
//   - re-sema is per design unit, keyed on the package environment
//     fingerprint plus the entity's and architecture's file, offset and
//     source text.
//
// Everything else — entity indexing, diagnostic merging — is cheap enough
// to run on every Check. The same Project value backs the vased
// /v1/project/diagnostics endpoint and the vaselsp language server.
package project

import (
	"context"
	"fmt"
	"strconv"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/pipeline"
	"vase/internal/sema"
	"vase/internal/source"
)

// File is one named source text of a project.
type File struct {
	Name string
	Text string
}

// Unit is one analyzed entity/architecture pair.
type Unit struct {
	// Entity and Arch are the canonical unit names.
	Entity string
	Arch   string
	// File is the name of the file holding the architecture.
	File string
	// Design is the analyzed design; Partial when recovered from errors.
	Design *sema.Design
	// Cached reports that the unit's sema run was reused, not recomputed.
	Cached bool
}

// Snapshot is the result of one Check over a set of files.
type Snapshot struct {
	// Units are the analyzed designs, in (file, architecture) order.
	Units []Unit
	// Diags are all diagnostics across every file — lex, parse, package
	// elaboration, cross-file resolution and per-unit sema — sorted in
	// deterministic (file, offset, code) order and deduplicated.
	Diags diag.List
	// Partial reports whether any file or unit was recovered from errors.
	Partial bool
	// ReusedParses and ReusedUnits count stages served from the cache; the
	// incrementality tests assert a one-line edit keeps the counts high.
	ReusedParses int
	ReusedUnits  int
}

// Project runs incremental multi-file checks over a shared pipeline.
type Project struct {
	pipe *pipeline.Pipeline
}

// New returns a Project over the given pipeline.
func New(pipe *pipeline.Pipeline) *Project {
	return &Project{pipe: pipe}
}

// parsedFile pairs a parse result with its source file.
type parsedFile struct {
	name string
	pr   *pipeline.ParseResult
	file *source.File
}

// Check parses and analyzes the given files. The only error is a cancelled
// context or an internal pipeline failure; broken sources are reported
// through Snapshot.Diags, never as an error.
func (p *Project) Check(ctx context.Context, files []File) (*Snapshot, error) {
	snap := &Snapshot{}
	var all diag.List

	// Parse every file (memoized per file).
	parsed := make([]parsedFile, 0, len(files))
	for _, f := range files {
		pr, err := p.pipe.ParseRecover(ctx, f.Name, f.Text)
		if err != nil {
			return nil, err
		}
		if pr.Cached {
			snap.ReusedParses++
		}
		if pr.Partial {
			snap.Partial = true
		}
		all = append(all, pr.Diags...)
		parsed = append(parsed, parsedFile{name: f.Name, pr: pr, file: pr.AST.File})
	}

	// Build the elaboration environment: packages from every file, in file
	// order. Package diagnostics are re-derived on every Check — they are
	// cheap, and keeping them out of the per-unit memo avoids attributing
	// one file's findings to another file's cache entry.
	env := sema.NewEnv()
	envParts := []string{}
	for _, pf := range parsed {
		env.AddPackages(pf.pr.AST, &all)
		for _, u := range pf.pr.AST.Units {
			switch u.(type) {
			case *ast.Package, *ast.PackageBody, *ast.ErrorUnit:
				envParts = append(envParts,
					pf.name, strconv.Itoa(int(u.Span().Start)), pf.file.Slice(u.Span()))
			}
		}
	}

	// Index entities across files; duplicates are project-level findings.
	type entitySite struct {
		file *source.File
		ent  *ast.Entity
	}
	entities := map[string]entitySite{}
	for _, pf := range parsed {
		rep := diag.NewReporter(pf.file, &all, diag.CodeSema)
		for _, e := range pf.pr.AST.Entities() {
			if prev, dup := entities[e.Name.Canon]; dup {
				rep.Report(diag.CodeDuplicate, e.Name.SpanV, "duplicate entity %q", e.Name.Name).
					WithRelated(prev.file.Position(prev.ent.Name.SpanV.Start), "previously declared here")
				continue
			}
			entities[e.Name.Canon] = entitySite{file: pf.file, ent: e}
		}
	}

	// Analyze each architecture against its entity (memoized per unit).
	for _, pf := range parsed {
		for _, arch := range pf.pr.AST.Architectures() {
			site, ok := entities[arch.Entity.Canon]
			if !ok {
				rep := diag.NewReporter(pf.file, &all, diag.CodeSema)
				rep.Errorf(arch.Entity.SpanV, "architecture %q refers to unknown entity %q", arch.Name.Name, arch.Entity.Name)
				continue
			}
			key := unitKey(envParts, site.file, site.ent, pf.file, arch)
			env, site, pfFile, archNode := env, site, pf.file, arch
			ur, err := p.pipe.AnalyzeUnit(ctx, key, func(context.Context) (*sema.Design, diag.List, error) {
				d, dl := sema.AnalyzeDesignUnit(env, site.file, site.ent, pfFile, archNode)
				return d, *dl, nil
			})
			if err != nil {
				return nil, err
			}
			if ur.Cached {
				snap.ReusedUnits++
			}
			if ur.Design != nil && ur.Design.Partial {
				snap.Partial = true
			}
			all = append(all, ur.Diags...)
			snap.Units = append(snap.Units, Unit{
				Entity: site.ent.Name.Canon,
				Arch:   arch.Name.Canon,
				File:   pf.name,
				Design: ur.Design,
				Cached: ur.Cached,
			})
		}
	}

	all.Sort()
	all.Dedupe()
	snap.Diags = all
	return snap, nil
}

// unitKey composes the content address of one unit's sema run: the package
// environment fingerprint plus the entity's and the architecture's file,
// byte offset and source text. Offsets are part of the key because the
// cached Design carries byte spans into its files.
func unitKey(envParts []string, entFile *source.File, ent *ast.Entity, archFile *source.File, arch *ast.Architecture) pipeline.Key {
	parts := make([]string, 0, len(envParts)+7)
	parts = append(parts, fmt.Sprintf("env:%d", len(envParts)))
	parts = append(parts, envParts...)
	parts = append(parts,
		entFile.Name(), strconv.Itoa(int(ent.Span().Start)), entFile.Slice(ent.Span()),
		archFile.Name(), strconv.Itoa(int(arch.Span().Start)), archFile.Slice(arch.Span()))
	return pipeline.ProjectUnitKey(parts...)
}

// FileDiags returns the snapshot diagnostics belonging to one file, in
// order. Diagnostics with no position are attributed to no file.
func (s *Snapshot) FileDiags(name string) diag.List {
	var out diag.List
	for _, d := range s.Diags {
		if d.Pos.Filename == name {
			out = append(out, d)
		}
	}
	return out
}

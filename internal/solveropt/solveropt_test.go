package solveropt

import (
	"flag"
	"strings"
	"testing"

	"vase/internal/mna"
)

func TestParseRoundTrip(t *testing.T) {
	for _, name := range Names() {
		tier, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if tier.String() != name {
			t.Errorf("Parse(%q).String() = %q", name, tier.String())
		}
	}
}

func TestParseUnknownListsValid(t *testing.T) {
	_, err := Parse("sparse")
	if err == nil {
		t.Fatal("Parse(sparse) accepted; the engine-internal names must not leak into the tool vocabulary")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list valid tier %q", err, name)
		}
	}
}

func TestModeMapping(t *testing.T) {
	cases := map[Tier]mna.SolverMode{
		Reference: mna.SolverReference,
		Exact:     mna.SolverAuto,
		Fast:      mna.SolverFast,
	}
	for tier, want := range cases {
		if got := tier.Mode(); got != want {
			t.Errorf("%v.Mode() = %v, want %v", tier, got, want)
		}
	}
}

func TestFlagBinding(t *testing.T) {
	tier := Exact
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.Var(Flag{&tier}, "solver", Usage)
	if err := fs.Parse([]string{"-solver=fast"}); err != nil {
		t.Fatal(err)
	}
	if tier != Fast {
		t.Fatalf("tier = %v after -solver=fast", tier)
	}
	fs2 := flag.NewFlagSet("x", flag.ContinueOnError)
	fs2.SetOutput(new(strings.Builder))
	fs2.Var(Flag{&tier}, "solver", Usage)
	if err := fs2.Parse([]string{"-solver=bogus"}); err == nil {
		t.Fatal("unknown tier accepted by the flag binding")
	}
}

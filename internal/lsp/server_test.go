package lsp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"vase/internal/pipeline"
)

// TestSmoke runs the same scenario CI drives via `vaselsp -smoke`.
func TestSmoke(t *testing.T) {
	pipe, err := pipeline.New(pipeline.Options{})
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	if err := Smoke(context.Background(), pipe, t.Logf); err != nil {
		t.Fatal(err)
	}
}

// testClient drives a server over in-memory pipes.
type testClient struct {
	t     *testing.T
	c     *conn
	done  chan error
	next  int
	diags []publishDiagnosticsParams
}

func newTestClient(t *testing.T) *testClient {
	t.Helper()
	pipe, err := pipeline.New(pipeline.Options{})
	if err != nil {
		t.Fatalf("pipeline.New: %v", err)
	}
	clientIn, serverOut := io.Pipe()
	serverIn, clientOut := io.Pipe()
	srv := New(serverIn, serverOut, pipe, t.Logf)
	done := make(chan error, 1)
	go func() { done <- srv.Run(context.Background()) }()
	tc := &testClient{t: t, c: newConn(clientIn, clientOut), done: done}
	t.Cleanup(func() {
		tc.notify("exit", struct{}{})
		if err := <-done; err != nil {
			t.Errorf("server exit: %v", err)
		}
	})
	tc.request("initialize", initializeParams{})
	tc.notify("initialized", struct{}{})
	return tc
}

func (tc *testClient) request(method string, params any) json.RawMessage {
	tc.t.Helper()
	raw, err := json.Marshal(params)
	if err != nil {
		tc.t.Fatal(err)
	}
	tc.next++
	id := json.RawMessage(fmt.Sprintf("%d", tc.next))
	if err := tc.c.write(&message{ID: &id, Method: method, Params: raw}); err != nil {
		tc.t.Fatalf("%s: %v", method, err)
	}
	for {
		m, err := tc.c.read()
		if err != nil {
			tc.t.Fatalf("%s: read: %v", method, err)
		}
		if m.Method == "textDocument/publishDiagnostics" {
			var p publishDiagnosticsParams
			if err := json.Unmarshal(m.Params, &p); err != nil {
				tc.t.Fatal(err)
			}
			tc.diags = append(tc.diags, p)
			continue
		}
		if m.ID == nil {
			continue
		}
		if m.Error != nil {
			tc.t.Fatalf("%s: server error %d: %s", method, m.Error.Code, m.Error.Message)
		}
		res, err := json.Marshal(m.Result)
		if err != nil {
			tc.t.Fatal(err)
		}
		return res
	}
}

func (tc *testClient) notify(method string, params any) {
	tc.t.Helper()
	raw, err := json.Marshal(params)
	if err != nil {
		tc.t.Fatal(err)
	}
	if err := tc.c.write(&message{Method: method, Params: raw}); err != nil {
		tc.t.Fatalf("%s: %v", method, err)
	}
}

// waitDiags blocks until a publishDiagnostics for uri arrives.
func (tc *testClient) waitDiags(uri string) publishDiagnosticsParams {
	tc.t.Helper()
	for {
		for i, p := range tc.diags {
			if p.URI == uri {
				tc.diags = append(tc.diags[:i], tc.diags[i+1:]...)
				return p
			}
		}
		m, err := tc.c.read()
		if err != nil {
			tc.t.Fatalf("waitDiags(%s): %v", uri, err)
		}
		if m.Method != "textDocument/publishDiagnostics" {
			continue
		}
		var p publishDiagnosticsParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			tc.t.Fatal(err)
		}
		tc.diags = append(tc.diags, p)
	}
}

// TestCrossFileResolution: an architecture opened in one buffer resolves
// its entity from another buffer; closing the entity buffer re-breaks it.
func TestCrossFileResolution(t *testing.T) {
	tc := newTestClient(t)
	const entURI = "file:///p/ent.vhd"
	const archURI = "file:///p/arch.vhd"

	tc.notify("textDocument/didOpen", didOpenParams{TextDocument: textDocumentItem{
		URI:  archURI,
		Text: "architecture behav of amp is\nbegin\n  vout == 2.0 * vin;\nend architecture behav;\n",
	}})
	p := tc.waitDiags(archURI)
	if len(p.Diagnostics) == 0 {
		t.Fatalf("orphan architecture produced no diagnostics")
	}

	tc.notify("textDocument/didOpen", didOpenParams{TextDocument: textDocumentItem{
		URI:  entURI,
		Text: "entity amp is\n  port (quantity vin : in real;\n        quantity vout : out real);\nend entity amp;\n",
	}})
	// Both documents get fresh diagnostics; the architecture's must clear.
	if p = tc.waitDiags(archURI); len(p.Diagnostics) != 0 {
		t.Fatalf("architecture diagnostics did not clear after entity opened: %+v", p.Diagnostics)
	}
	if p = tc.waitDiags(entURI); len(p.Diagnostics) != 0 {
		t.Fatalf("entity diagnostics: %+v", p.Diagnostics)
	}

	tc.notify("textDocument/didClose", didCloseParams{TextDocument: textDocumentIdentifier{URI: entURI}})
	if p = tc.waitDiags(entURI); len(p.Diagnostics) != 0 {
		t.Fatalf("closed document's diagnostics not cleared: %+v", p.Diagnostics)
	}
	if p = tc.waitDiags(archURI); len(p.Diagnostics) == 0 {
		t.Fatalf("architecture did not re-break after its entity closed")
	}
}

// TestDocumentSymbolOnBrokenFile: the outline works on documents with
// syntax errors — the recovered AST still carries the surviving units.
func TestDocumentSymbolOnBrokenFile(t *testing.T) {
	tc := newTestClient(t)
	const uri = "file:///p/broken.vhd"
	tc.notify("textDocument/didOpen", didOpenParams{TextDocument: textDocumentItem{
		URI: uri,
		Text: "entity amp is\n  port (quantity vin : in real\n        quantity vout : out real);\nend entity amp;\n" +
			"architecture behav of amp is\nbegin\n  vout == 2.0 * vin;\nend architecture behav;\n",
	}})
	if p := tc.waitDiags(uri); len(p.Diagnostics) == 0 {
		t.Fatalf("missing semicolon produced no diagnostics")
	}
	res := tc.request("textDocument/documentSymbol", documentSymbolParams{
		TextDocument: textDocumentIdentifier{URI: uri},
	})
	var syms []DocumentSymbol
	if err := json.Unmarshal(res, &syms); err != nil {
		t.Fatal(err)
	}
	// Recovery may resync into extra partial units; what matters is that
	// both real units survive the syntax error with their names intact.
	names := map[string]bool{}
	for _, s := range syms {
		names[s.Name] = true
	}
	if !names["amp"] || !names["behav"] {
		t.Fatalf("outline = %+v, want amp and behav despite the syntax error", syms)
	}
	if syms[0].Name != "amp" || len(syms[0].Children) == 0 || syms[0].Children[0].Name != "vin" {
		t.Fatalf("first symbol = %+v, want entity amp with port vin", syms[0])
	}
}

func TestWordAt(t *testing.T) {
	text := "vout == 2.0 * vin;\n"
	cases := []struct {
		pos  Position
		want string
	}{
		{Position{0, 0}, "vout"},
		{Position{0, 3}, "vout"},
		{Position{0, 4}, "vout"}, // just past the word: snap back
		{Position{0, 14}, "vin"},
		{Position{0, 6}, ""}, // on "=="
	}
	for _, c := range cases {
		got, _ := wordAt(text, c.pos)
		if got != c.want {
			t.Errorf("wordAt(%v) = %q, want %q", c.pos, got, c.want)
		}
	}
}

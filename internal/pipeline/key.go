package pipeline

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"strconv"

	"vase/internal/library"
	"vase/internal/lint"
	"vase/internal/mapper"
	"vase/internal/mna"
	"vase/internal/patterns"
)

// Key is a content-addressed cache key: the SHA-256 over a domain tag, the
// canonical input artifact, the canonically-encoded stage options and the
// fingerprints of whatever libraries the stage consults. Equal keys denote
// equal stage outputs (byte-determinism, PR 1); any input change — one
// character of source, one option field that can affect the result, one
// library cell — changes the key.
type Key [sha256.Size]byte

// String returns the key as lowercase hex (the disk artifact basename).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// keyOf hashes the parts with length prefixes, so part boundaries are
// unambiguous ("ab","c" never collides with "a","bc").
func keyOf(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// Key-domain tags. The version suffix is bumped when a stage's output
// format or semantics change, invalidating older artifacts.
const (
	parseDomain    = "vase/parse/v1"
	recoverDomain  = "vase/parse-recover/v1"
	semaDomain     = "vase/sema/v1"
	unitDomain     = "vase/sema-unit/v1"
	compileDomain  = "vase/compile/v1"
	lintSrcDomain  = "vase/lint-src/v1"
	lintVHIFDomain = "vase/lint-vhif/v1"
	rangesDomain   = "vase/ranges/v1"
	mapDomain      = "vase/map/v1"
	spiceDomain    = "vase/spice/v1"
)

// ParseRecoverKey is the content address of an error-recovering parse of one
// named source text.
func ParseRecoverKey(name, text string) Key {
	return keyOf(recoverDomain, name, text)
}

// ProjectUnitKey is the content address of a per-unit sema run in a
// multi-file project. Callers (internal/project) compose it from everything
// the unit's analysis can observe: the environment fingerprint (package
// sources in order), the entity's file/offset/text and the architecture's
// file/offset/text. The offsets matter because the cached Design carries
// byte spans into its files.
func ProjectUnitKey(parts ...string) Key {
	return keyOf(append([]string{unitDomain}, parts...)...)
}

// CompileKey is the content address of the front end's output (the VHIF
// module plus Table 1 metrics) for one named source text. The front end has
// no options and consults no libraries, so the key covers the source alone.
func CompileKey(name, text string) Key {
	return keyOf(compileDomain, name, text)
}

// LintSourceKey is the content address of a source-level lint run: the
// source, the pass selection, and the analyzer registry fingerprint (so
// adding or changing a pass invalidates cached findings).
func LintSourceKey(name, text string, opts lint.Options) Key {
	return keyOf(lintSrcDomain, name, text, opts.Canonical(), lint.Fingerprint())
}

// LintVHIFKey is LintSourceKey for module-level lint over serialized VHIF.
func LintVHIFKey(name, text string, opts lint.Options) Key {
	return keyOf(lintVHIFDomain, name, text, opts.Canonical(), lint.Fingerprint())
}

// RangesKey is the content address of a value-range analysis result for one
// serialized VHIF module. The analysis has no options and consults no
// libraries; the domain tag's version is bumped whenever the abstract
// domains or transfer functions change, invalidating older range facts.
func RangesKey(vhifText string) Key {
	return keyOf(rangesDomain, vhifText)
}

// SpiceKey is the content address of a circuit-level transient simulation:
// the encoded netlist, the input waveform specs (wavespec grammar) sorted
// by port name, the analysis window in hex-exact form, and the solver
// tier with its error budget. Two exclusions are deliberate. Workers
// cannot affect a transient (only the AC sweep parallelizes), so it is
// result-neutral. And all bit-identical solver modes — auto, dense,
// sparse, reference — share the single tag "exact", because byte-equal
// outputs deserve one cache slot; only SolverFast gets its own tag, and
// only its tag embeds the budget, since the exact modes never consult it.
func SpiceKey(netlistData string, inputs map[string]string, tstop, tstep float64, solver mna.SolverMode, budget mna.ErrorBudget) Key {
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names)+5)
	parts = append(parts, spiceDomain, netlistData)
	for _, n := range names {
		parts = append(parts, n+"="+inputs[n])
	}
	tier := "exact"
	if solver == mna.SolverFast {
		tier = "fast " + budget.Canonical()
	}
	parts = append(parts,
		strconv.FormatFloat(tstop, 'x', -1, 64),
		strconv.FormatFloat(tstep, 'x', -1, 64),
		tier)
	return keyOf(parts...)
}

// MapKey is the content address of an architecture-generation result: the
// serialized VHIF input, the canonical synthesis options (result-neutral
// fields — Workers, Deadline, MaxNodes, Trace — excluded; see
// mapper.Options.Canonical), and the fingerprints of the cell library and
// the pattern-generation rules the search draws candidates from.
func MapKey(vhifText string, opts mapper.Options) Key {
	return keyOf(mapDomain, vhifText, opts.Canonical(),
		library.Fingerprint(), patterns.Fingerprint())
}

entity power_meter is
  port (
    quantity vline : in real is voltage;
    quantity iline : in real is current;
    quantity vout  : out real;
    quantity iout  : out real
  );
end entity;

architecture acquisition of power_meter is
  quantity vheld, iheld : real;
  signal sv, si, ready : bit;
begin
  if (sv = '1') use
    vheld == vline;
  end use;
  if (si = '1') use
    iheld == iline;
  end use;
  vout == adc(vheld, 8.0);
  iout == adc(iheld, 8.0);
  process (vline'above(0.0), iline'above(0.0)) is begin
    sv <= vline'above(0.0); si <= iline'above(0.0); ready <= '1';
  end process;
end architecture;

package diagcheck

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// RecoveryPackages are the package directories (relative to the repository
// root) whose public contract is error tolerance: the recovering parser and
// sema must push through broken input and report diagnostics, never abort
// on the first problem. The recovery analyzer bans fail-fast
// "return nil, err" propagation in these packages unless a site is
// explicitly annotated as a deliberate strict entry point.
var RecoveryPackages = []string{
	"internal/parser",
	"internal/sema",
}

// FailfastDirective marks a deliberate fail-fast return in a recovery
// package: strict API entry points (Parse, AnalyzeOne) legitimately abort,
// but the annotation is the reviewable record that the site is an entry
// point, not a recovery path quietly dropping partial results.
const FailfastDirective = "//vase:failfast"

// CheckRecoveryDir type-checks one package directory (non-test files only)
// and reports fail-fast returns: a return statement that propagates an
// error while discarding the result (any result is the nil identifier and
// the final result has type error). Recovery paths must instead report into
// a diag.List and return the partial value.
func CheckRecoveryDir(dir string) ([]Violation, error) {
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Lenient type check, same policy as the determinism analyzer: an
	// unresolvable expression simply isn't flagged.
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {},
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	_, _ = conf.Check(dir, fset, files, info)

	var out []Violation
	for _, f := range files {
		out = append(out, checkRecoveryFile(fset, f, info)...)
	}
	sortViolations(out)
	return out, nil
}

// checkRecoveryFile walks one file's functions looking for fail-fast
// returns not covered by a directive on the line or the line above.
func checkRecoveryFile(fset *token.FileSet, f *ast.File, info *types.Info) []Violation {
	directives := directiveLines(fset, f)
	allowed := func(pos token.Pos) bool {
		line := fset.Position(pos).Line
		return directives[FailfastDirective][line] || directives[FailfastDirective][line-1]
	}

	var out []Violation
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) < 2 {
				return true
			}
			last := ret.Results[len(ret.Results)-1]
			if isNilIdent(last) || !isErrorExpr(info, last) {
				return true
			}
			dropsResult := false
			for _, r := range ret.Results[:len(ret.Results)-1] {
				if isNilIdent(r) {
					dropsResult = true
					break
				}
			}
			if !dropsResult || allowed(ret.Pos()) {
				return true
			}
			out = append(out, Violation{
				Pos:  fset.Position(ret.Pos()),
				Call: "return nil, err",
				Reason: fmt.Sprintf("%s fails fast instead of recovering; report into the diag.List and "+
					"return the partial result, or annotate a strict entry point with %s",
					fn.Name.Name, FailfastDirective),
			})
			return true
		})
	}
	return out
}

// isNilIdent reports whether e is the predeclared nil identifier.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isErrorExpr reports whether e has static type error. When type
// information is unavailable (lenient check) it falls back to shape: an
// identifier named err* or a call to a method named Err.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return types.Identical(tv.Type, types.Universe.Lookup("error").Type())
	}
	switch e := e.(type) {
	case *ast.Ident:
		return strings.HasPrefix(e.Name, "err")
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Err"
		}
	}
	return false
}

// CheckRecoveryAll runs CheckRecoveryDir over every recovery package under
// root.
func CheckRecoveryAll(root string) ([]Violation, error) {
	var out []Violation
	for _, pkg := range RecoveryPackages {
		vs, err := CheckRecoveryDir(filepath.Join(root, pkg))
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	sortViolations(out)
	return out, nil
}

// Package vase is a behavioral synthesis environment for analog systems:
// an open reimplementation of the VASE flow from "A VHDL-AMS Compiler and
// Architecture Generator for Behavioral Synthesis of Analog Systems"
// (Doboli & Vemuri, DATE 1999).
//
// The flow has two technology-separated steps:
//
//  1. Compile: a VASS specification (the VHDL-AMS subset for synthesis) is
//     parsed, checked, and translated into VHIF — interconnected
//     signal-flow graphs for the continuous-time behavior and finite state
//     machines for the event-driven behavior.
//  2. Synthesize: a branch-and-bound architecture generator maps the VHIF
//     representation onto a minimum-area netlist of op-amp-level library
//     components, guided by an analog performance estimator.
//
// Synthesized designs can be verified by behavioral transient simulation
// (Simulate/SimulateNetlist) and by circuit-level simulation of op-amp
// macromodel expansions (Spice), reproducing the paper's receiver
// experiment end to end.
//
// A minimal session:
//
//	design, err := vase.Compile(vase.Source{Name: "amp.vhd", Text: src})
//	...
//	arch, err := design.Synthesize()
//	fmt.Println(arch.Netlist.Summary(), arch.Report.AreaUm2)
package vase

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"

	"vase/internal/absint"
	"vase/internal/ast"
	"vase/internal/compile"
	"vase/internal/corpus"
	"vase/internal/diag"
	"vase/internal/estimate"
	"vase/internal/lint"
	"vase/internal/mapper"
	"vase/internal/mna"
	"vase/internal/netlist"
	"vase/internal/patterns"
	"vase/internal/pipeline"
	"vase/internal/sema"
	"vase/internal/sim"
	"vase/internal/source"
	"vase/internal/vhif"
	"vase/internal/wavespec"
)

// Source is a named VASS source text.
type Source struct {
	Name string
	Text string
}

// Design is a compiled VASS design: the analyzed front-end model plus its
// VHIF intermediate representation.
type Design struct {
	// Name is the entity name.
	Name string
	// AST is the parsed design file. It is nil when the design was served
	// from a pipeline's on-disk cache (only the VHIF module and the front
	// metrics are persisted).
	AST *ast.DesignFile
	// Sema is the analyzed design (symbol tables, types, Table 1 metrics).
	// Like AST, it is nil on a disk-cache hit.
	Sema *sema.Design
	// VHIF is the intermediate representation.
	VHIF *vhif.Module
	// Stats are the front-end Table 1 metrics (available even when Sema is
	// nil).
	Stats pipeline.FrontStats
	// Cached reports that compilation was served from the pipeline cache.
	Cached bool

	// pipe is the pipeline that compiled the design (synthesis and
	// simulation of the design route through it); text is the VHIF module's
	// canonical serialization, the map stage's cache-key input.
	pipe *pipeline.Pipeline
	text string
}

// Pipeline is a pass manager that memoizes the synthesis flow's stages
// (parse, sema, VHIF compilation, lint, architecture generation) under
// content-addressed keys, with an in-memory LRU and an optional on-disk
// artifact store shared across processes. See NewPipeline.
type Pipeline = pipeline.Pipeline

// PipelineOptions configures NewPipeline (LRU size, cache directory).
type PipelineOptions = pipeline.Options

// PipelineStats is a snapshot of a pipeline's per-stage cache counters.
type PipelineStats = pipeline.Stats

// NewPipeline builds a pass pipeline. With a zero Options value the
// pipeline memoizes in memory only; set Options.CacheDir to persist compile
// and synthesis artifacts across processes.
func NewPipeline(opts PipelineOptions) (*Pipeline, error) { return pipeline.New(opts) }

// DefaultPipeline returns the process-wide pipeline used by Compile, Lint,
// Synthesize and the benchmark harness when no explicit pipeline is given.
func DefaultPipeline() *Pipeline { return pipeline.Default() }

// RenderDiagnostics formats a Compile error with source excerpts and caret
// markers when the error carries positions; other errors format plainly.
func RenderDiagnostics(err error, src Source) string {
	if err == nil {
		return ""
	}
	f := source.NewFile(src.Name, src.Text)
	var dl diag.List
	if errors.As(err, &dl) {
		return dl.Render(f)
	}
	var d *diag.Diagnostic
	if errors.As(err, &d) {
		return d.Render(f)
	}
	var list source.ErrorList
	if errors.As(err, &list) {
		return list.RenderList(f)
	}
	return err.Error()
}

// Compile parses, analyzes and compiles a VASS source into its primary VHIF
// representation, through the process-wide pipeline: recompilations of an
// unchanged source are served from cache.
func Compile(src Source) (*Design, error) {
	return CompileContext(context.Background(), src)
}

// CompileContext is Compile with cancellation: the context is checked
// between front-end stages (parse, analyze, compile, validate), so a
// deadlined compilation returns promptly with the context's error.
// Cancelled compilations are never cached.
func CompileContext(ctx context.Context, src Source) (*Design, error) {
	return CompileVia(ctx, pipeline.Default(), src)
}

// CompileVia is CompileContext through an explicit pipeline (for example
// one with an on-disk cache, or an isolated one for tests).
func CompileVia(ctx context.Context, p *Pipeline, src Source) (*Design, error) {
	cr, err := p.Compile(ctx, src.Name, src.Text)
	if err != nil {
		return nil, err
	}
	return &Design{
		Name:   cr.Name,
		AST:    cr.AST,
		Sema:   cr.Sema,
		VHIF:   cr.Module,
		Stats:  cr.Stats,
		Cached: cr.Cached,
		pipe:   p,
		text:   cr.Text,
	}, nil
}

// RangeAnalysis is the memoized output of the pipeline's ranges stage: the
// static value hull of every probe-resolvable signal of a design, computed
// by abstract interpretation over the VHIF graph. Its Check/CheckAll
// methods decide assert pragmas statically (Prove/Refute/Unknown).
type RangeAnalysis = pipeline.RangesResult

// StaticProperty pairs an assertion with its static verdict and the range
// facts it rests on.
type StaticProperty = absint.Property

// StaticVerdict is the outcome of checking one assertion against static
// hulls. Prove guarantees the runtime monitor can never report Fail;
// Refute guarantees it can never report Pass; Unknown makes no claim.
type StaticVerdict = absint.Verdict

// The static verdicts.
const (
	StaticUnknown = absint.Unknown
	StaticProve   = absint.Prove
	StaticRefute  = absint.Refute
)

// Ranges runs (or reuses) the value-range analysis for the design through
// the pipeline that compiled it.
func (d *Design) Ranges() (*RangeAnalysis, error) {
	return d.RangesContext(context.Background())
}

// RangesContext is Ranges with cancellation.
func (d *Design) RangesContext(ctx context.Context) (*RangeAnalysis, error) {
	return d.pipe.RangesText(ctx, d.VHIF, d.text)
}

// LintOptions configures a lint run (pass selection).
type LintOptions = lint.Options

// Diagnostics is a sorted, deduplicated list of structured findings.
type Diagnostics = diag.List

// Severity levels for filtering Diagnostics.
const (
	SeverityInfo    = diag.Info
	SeverityWarning = diag.Warning
	SeverityError   = diag.Error
)

// Lint runs the synthesizability linter over a VASS source: the full front
// end plus every analyzer (unused objects, FSM liveness, algebraic loops,
// dimension consistency, division hazards, range checks, annotation
// validation, subset conformance). Front-end errors are folded into the
// returned list; the error return is reserved for driver misuse such as an
// unknown pass name.
func Lint(src Source, opts LintOptions) (Diagnostics, error) {
	return LintContext(context.Background(), src, opts)
}

// LintContext is Lint with cancellation between front-end stages and
// analyzer passes.
func LintContext(ctx context.Context, src Source, opts LintOptions) (Diagnostics, error) {
	return LintVia(ctx, pipeline.Default(), src, opts)
}

// LintVia is LintContext through an explicit pipeline.
func LintVia(ctx context.Context, p *Pipeline, src Source, opts LintOptions) (Diagnostics, error) {
	return p.Lint(ctx, src.Name, src.Text, opts)
}

// LintVHIF runs the module-level analyzers over serialized VHIF text.
func LintVHIF(name, text string, opts LintOptions) (Diagnostics, error) {
	return LintVHIFContext(context.Background(), name, text, opts)
}

// LintVHIFContext is LintVHIF with cancellation between analyzer passes.
func LintVHIFContext(ctx context.Context, name, text string, opts LintOptions) (Diagnostics, error) {
	return LintVHIFVia(ctx, pipeline.Default(), name, text, opts)
}

// LintVHIFVia is LintVHIFContext through an explicit pipeline.
func LintVHIFVia(ctx context.Context, p *Pipeline, name, text string, opts LintOptions) (Diagnostics, error) {
	return p.LintVHIF(ctx, name, text, opts)
}

// LintPasses returns the registered analyzers (name and one-line doc), in
// execution order.
func LintPasses() []*lint.Pass { return lint.Passes() }

// CompileAlternatives compiles up to limit alternative DAE solver
// topologies (limit <= 0 means all feasible ones). The front end reuses the
// pipeline's parse and sema stages; the alternatives themselves are not
// cached.
func CompileAlternatives(src Source, limit int) ([]*vhif.Module, error) {
	d, err := pipeline.Default().Analyze(context.Background(), src.Name, src.Text)
	if err != nil {
		return nil, err
	}
	return compile.CompileAll(d, limit)
}

// Metrics returns the design's Table 1 metrics.
func (d *Design) Metrics() corpus.Row {
	return corpus.Row{
		ContinuousLines: d.Stats.ContinuousLines,
		Quantities:      d.Stats.Quantities,
		EventLines:      d.Stats.EventLines,
		Signals:         d.Stats.Signals,
		Blocks:          d.VHIF.BlockCount(),
		States:          d.VHIF.StateCount(),
		Datapath:        d.VHIF.DatapathCount(),
	}
}

// ParseVHIF reads the VHIF text format (as produced by Design.VHIF.Dump or
// the vassc tool) back into a module, so synthesis can run from serialized
// intermediate representations.
func ParseVHIF(text string) (*vhif.Module, error) { return vhif.Parse(text) }

// SynthesizeModule runs the architecture generator directly on a VHIF
// module (for example one read with ParseVHIF).
func SynthesizeModule(m *vhif.Module, opts SynthesisOptions) (*Architecture, error) {
	return SynthesizeModuleContext(context.Background(), m, opts)
}

// SynthesizeModuleContext is SynthesizeModule under a context. Cancellation
// and Options.Deadline make the branch-and-bound search anytime: instead of
// failing, it returns the best implementation found so far with
// Architecture.Nonoptimal set (the result is a valid netlist, just without
// an optimality proof). Truncated results are never cached.
func SynthesizeModuleContext(ctx context.Context, m *vhif.Module, opts SynthesisOptions) (*Architecture, error) {
	return SynthesizeModuleVia(ctx, pipeline.Default(), m, opts)
}

// SynthesizeModuleVia is SynthesizeModuleContext through an explicit
// pipeline.
func SynthesizeModuleVia(ctx context.Context, p *Pipeline, m *vhif.Module, opts SynthesisOptions) (*Architecture, error) {
	res, cached, err := p.SynthesizeModule(ctx, m, opts)
	if err != nil {
		return nil, err
	}
	return newArchitecture(res, cached), nil
}

// newArchitecture wraps a mapper result in the public Architecture type.
func newArchitecture(res *mapper.Result, cached bool) *Architecture {
	return &Architecture{
		Netlist:    res.Netlist,
		Report:     res.Report,
		Stats:      res.Stats,
		Tree:       res.Tree,
		Nonoptimal: res.Nonoptimal,
		Cached:     cached,
	}
}

// Synthesize compiles and synthesizes a VASS source in one call under a
// context — the anytime entry point. The front end always runs to
// completion (it is fast, and its output is needed even for a truncated
// result); the context governs the branch-and-bound search, which on
// expiry returns its best incumbent with Architecture.Nonoptimal set.
func Synthesize(ctx context.Context, src Source, opts SynthesisOptions) (*Architecture, error) {
	return SynthesizeVia(ctx, pipeline.Default(), src, opts)
}

// SynthesizeVia is Synthesize through an explicit pipeline: both the front
// end and the architecture generation are memoized there. Only the search
// runs under ctx — the front end always completes, per the anytime
// contract.
func SynthesizeVia(ctx context.Context, p *Pipeline, src Source, opts SynthesisOptions) (*Architecture, error) {
	d, err := CompileVia(context.Background(), p, src)
	if err != nil {
		return nil, err
	}
	return d.SynthesizeContext(ctx, opts)
}

// SynthesisOptions re-exports the architecture generator configuration.
// Workers selects the parallel search width (0 = all CPUs, 1 = sequential);
// every worker count returns the identical netlist.
type SynthesisOptions = mapper.Options

// DefaultSynthesisOptions returns the standard configuration (SCN 2.0 µm
// process, audio-range system specification).
func DefaultSynthesisOptions() SynthesisOptions { return mapper.DefaultOptions() }

// PatternOptions re-exports the pattern-generation controls.
type PatternOptions = patterns.Options

// Architecture is a synthesized op-amp-level implementation.
type Architecture struct {
	Netlist *netlist.Netlist
	Report  *netlist.Report
	Stats   mapper.Stats
	Tree    *mapper.TreeNode
	// Nonoptimal is set when the search was cut short by a cancellation,
	// deadline or node budget: the netlist is the best incumbent found, not
	// a proven minimum-area implementation. Stats.Elapsed and
	// Stats.NodesVisited record how far the search got. Nonoptimal results
	// are never cached.
	Nonoptimal bool
	// Cached reports that the architecture was served from the pipeline
	// cache instead of running the branch-and-bound search; Stats then
	// describes the original search that produced the cached artifact.
	Cached bool
	// SimWorkers bounds the fan-out of the parallel AC sweep in the Spice
	// and AC verification steps (0 = all CPUs, 1 = sequential). Every
	// worker count produces bitwise-identical results.
	SimWorkers int
	// SimSolver selects the MNA solver tier for the Spice and AC
	// verification steps. The zero value is the exact planned engine
	// (bit-identical to mna.SolverReference); mna.SolverFast trades
	// bit-identity for speed under SimBudget.
	SimSolver mna.SolverMode
	// SimBudget is the fast tier's error budget (zero value = the
	// documented defaults). It is part of the simulation's identity: cached
	// fast-tier results are keyed on it.
	SimBudget mna.ErrorBudget
}

// Synthesize maps the design onto a minimum-area component netlist with the
// default options.
func (d *Design) Synthesize() (*Architecture, error) {
	return d.SynthesizeWith(DefaultSynthesisOptions())
}

// SynthesizeWith maps the design with explicit options.
func (d *Design) SynthesizeWith(opts SynthesisOptions) (*Architecture, error) {
	return d.SynthesizeContext(context.Background(), opts)
}

// SynthesizeContext maps the design under a context; see
// SynthesizeModuleContext for the anytime contract. The search runs through
// the pipeline that compiled the design, so re-synthesizing an unchanged
// design under unchanged options is a cache hit.
func (d *Design) SynthesizeContext(ctx context.Context, opts SynthesisOptions) (*Architecture, error) {
	p := d.pipe
	if p == nil {
		p = pipeline.Default()
	}
	var res *mapper.Result
	var cached bool
	var err error
	if d.text != "" {
		res, cached, err = p.SynthesizeText(ctx, d.VHIF, d.text, opts)
	} else {
		res, cached, err = p.SynthesizeModule(ctx, d.VHIF, opts)
	}
	if err != nil {
		return nil, err
	}
	return newArchitecture(res, cached), nil
}

// SolverMode re-exports the MNA solver-tier selector for
// Architecture.SimSolver.
type SolverMode = mna.SolverMode

// The two solver tiers of the public API: the exact planned engine
// (bit-identical to the original reference eliminator) and the
// tolerance-tier engine (deterministic, within ErrorBudget of the
// reference). The finer-grained mna modes remain available to callers
// that import internal/mna directly.
const (
	SolverExact SolverMode = mna.SolverAuto
	SolverFast  SolverMode = mna.SolverFast
)

// Simulation re-exports.
type (
	// Waveform is an input source for simulations.
	Waveform = sim.Source
	// Trace holds simulated waveforms.
	Trace = sim.Trace
	// SimOptions configures a transient run.
	SimOptions = sim.Options
)

// Waveform constructors.
var (
	// DC is a constant source.
	DC = sim.DC
	// Sine is a sinusoidal source (amplitude, frequency Hz, phase rad).
	Sine = sim.Sine
	// StepAt switches from one level to another at a given time.
	StepAt = sim.Step
	// Ramp is a linear ramp with the given slope.
	Ramp = sim.Ramp
)

// ParseWaveform parses a textual waveform specification — dc:V,
// sine:AMP,FREQ, step:V0,V1,T0 or ramp:SLOPE — as accepted by vasesim -in
// and the vased /v1/simulate endpoint.
func ParseWaveform(spec string) (Waveform, error) {
	return wavespec.Parse(spec)
}

// Simulate runs a behavioral transient analysis of the design's VHIF
// signal-flow graphs.
func (d *Design) Simulate(inputs map[string]Waveform, opts SimOptions) (*Trace, error) {
	return sim.SimulateModule(d.VHIF, inputs, opts)
}

// SimulateContext is Simulate under a context: cancellation (or
// SimOptions.Deadline / SimOptions.MaxSteps) stops the integration early
// and returns the partial trace with Trace.Truncated set.
func (d *Design) SimulateContext(ctx context.Context, inputs map[string]Waveform, opts SimOptions) (*Trace, error) {
	return sim.SimulateModuleContext(ctx, d.VHIF, inputs, opts)
}

// SimulateNetlist runs a functional transient analysis of a synthesized
// netlist (every component evaluates its ideal transfer function).
func (a *Architecture) Simulate(inputs map[string]Waveform, opts SimOptions) (*Trace, error) {
	return sim.SimulateNetlist(a.Netlist, inputs, opts)
}

// SimulateContext is Simulate under a context; a cancelled or deadlined
// run returns the partial trace with Trace.Truncated set.
func (a *Architecture) SimulateContext(ctx context.Context, inputs map[string]Waveform, opts SimOptions) (*Trace, error) {
	return sim.SimulateNetlistContext(ctx, a.Netlist, inputs, opts)
}

// ErrorBudget re-exports the fast tier's tolerance pair: the bound
// |fast - ref| <= AbsTol + RelTol*|ref| every SolverFast trace point honors
// against the reference solver. The zero value means the documented
// defaults.
type ErrorBudget = mna.ErrorBudget

// SpiceResult is a circuit-level (MNA) simulation of a synthesized netlist.
type SpiceResult struct {
	Elab *mna.Elaborated
	Tran *mna.Tran
	// Stats summarizes the linear-solver work behind the run: Newton
	// iterations, factorizations, system dimension and the sparse plan's
	// pattern size.
	Stats mna.SolverStats
}

// V returns the polarity-corrected waveform of a port or net.
func (r *SpiceResult) V(name string) []float64 { return r.Elab.V(r.Tran, name) }

// Time returns the simulation time points.
func (r *SpiceResult) Time() []float64 { return r.Tran.Time }

// Spice elaborates the netlist into an op-amp macromodel circuit and runs a
// transient analysis — the paper's SPICE verification step.
func (a *Architecture) Spice(inputs map[string]Waveform, tstop, tstep float64) (*SpiceResult, error) {
	return a.SpiceContext(context.Background(), inputs, tstop, tstep)
}

// SpiceContext is Spice under a context: a cancelled or deadlined transient
// returns the samples computed so far with Tran.Truncated set.
func (a *Architecture) SpiceContext(ctx context.Context, inputs map[string]Waveform, tstop, tstep float64) (*SpiceResult, error) {
	waves := make(map[string]mna.Waveform, len(inputs))
	for name, w := range inputs {
		waves[name] = mna.Waveform(w)
	}
	el, err := mna.Elaborate(a.Netlist, waves)
	if err != nil {
		return nil, err
	}
	el.Circuit.Workers = a.SimWorkers
	el.Circuit.Solver = a.SimSolver
	el.Circuit.Budget = a.SimBudget
	tr, err := el.Circuit.TransientContext(ctx, tstop, tstep)
	if err != nil {
		return nil, err
	}
	return &SpiceResult{Elab: el, Tran: tr, Stats: el.Circuit.SolverStats()}, nil
}

// SpiceVia is SpiceContext with the transient memoized in an explicit
// pipeline. The inputs are textual waveform specs (the ParseWaveform
// grammar) rather than functions — functions are not content-addressable,
// their specs are. The cache key covers the encoded netlist, the specs,
// the analysis window and the solver tier with its error budget, so a
// fast-tier trace never masquerades as an exact one (and vice versa); see
// pipeline.SpiceKey. On a hit the solver never runs: the circuit is
// re-elaborated only for named-port lookup and the stored samples are
// rehydrated onto it.
func (a *Architecture) SpiceVia(ctx context.Context, p *Pipeline, inputs map[string]string, tstop, tstep float64) (*SpiceResult, error) {
	data, err := a.Netlist.Encode()
	if err != nil {
		// An unencodable netlist cannot be content-addressed; run the
		// simulation directly rather than failing it.
		waves, perr := wavespec.ParseMap(inputs)
		if perr != nil {
			return nil, perr
		}
		ws := make(map[string]Waveform, len(waves))
		for name, w := range waves {
			ws[name] = Waveform(w)
		}
		return a.SpiceContext(ctx, ws, tstop, tstep)
	}
	sd, err := p.Spice(ctx, data, inputs, tstop, tstep, pipeline.SpiceOptions{
		Solver:  a.SimSolver,
		Budget:  a.SimBudget,
		Workers: a.SimWorkers,
	})
	if err != nil {
		return nil, err
	}
	sources, err := wavespec.ParseMap(inputs)
	if err != nil {
		return nil, err
	}
	mw := make(map[string]mna.Waveform, len(sources))
	for name, w := range sources {
		mw[name] = mna.Waveform(w)
	}
	el, err := mna.Elaborate(a.Netlist, mw)
	if err != nil {
		return nil, err
	}
	v := make(map[mna.Node][]float64, len(sd.V))
	for n, w := range sd.V {
		v[mna.Node(n)] = w
	}
	tr := el.Circuit.TranFromSamples(sd.Time, v, sd.Truncated)
	return &SpiceResult{Elab: el, Tran: tr}, nil
}

// ACResponse is a small-signal frequency sweep of a synthesized circuit.
type ACResponse struct {
	Freqs []float64
	// Truncated is set when a cancelled or deadlined ACContext stopped the
	// sweep early; Freqs holds the points solved so far.
	Truncated bool
	// Stats summarizes the linear-solver work behind the sweep.
	Stats  mna.SolverStats
	elab   *mna.Elaborated
	result *mna.ACResult
}

// Mag returns the magnitude response at a port or net (polarity-independent).
func (r *ACResponse) Mag(name string) []float64 {
	if n, ok := r.elab.NodeOf[name]; ok {
		return r.result.MagOf(n)
	}
	return r.result.Mag(name)
}

// MagDB returns the magnitude response in decibels.
func (r *ACResponse) MagDB(name string) []float64 {
	mags := r.Mag(name)
	out := make([]float64, len(mags))
	for i, m := range mags {
		out[i] = 20 * math.Log10(math.Max(m, 1e-18))
	}
	return out
}

// AC elaborates the netlist into its op-amp macromodel circuit and runs a
// small-signal frequency sweep with the named input port as the stimulus:
// points log-spaced frequencies in [f1, f2]. Other inputs are held at their
// DC values (zero).
func (a *Architecture) AC(stimulus string, f1, f2 float64, points int) (*ACResponse, error) {
	return a.ACContext(context.Background(), stimulus, f1, f2, points)
}

// ACContext is AC under a context, checked between frequency points: a
// cancelled or deadlined sweep returns the prefix of points solved so far
// with ACResponse.Truncated set, matching the anytime contract of the
// transient simulators.
func (a *Architecture) ACContext(ctx context.Context, stimulus string, f1, f2 float64, points int) (*ACResponse, error) {
	waves := map[string]mna.Waveform{}
	for _, p := range a.Netlist.Ports {
		if p.Dir == netlist.In {
			waves[p.Name] = func(float64) float64 { return 0 }
		}
	}
	if _, ok := waves[stimulus]; !ok {
		return nil, fmt.Errorf("vase: no input port %q for the AC stimulus", stimulus)
	}
	el, err := mna.Elaborate(a.Netlist, waves)
	if err != nil {
		return nil, err
	}
	el.Circuit.Workers = a.SimWorkers
	el.Circuit.Solver = a.SimSolver
	el.Circuit.Budget = a.SimBudget
	freqs := mna.LogSweep(f1, f2, points)
	res, err := el.Circuit.ACContext(ctx, "v_"+stimulus, freqs)
	if err != nil {
		return nil, err
	}
	return &ACResponse{Freqs: res.Freqs, Truncated: res.Truncated, Stats: el.Circuit.SolverStats(), elab: el, result: res}, nil
}

// SpiceDeck renders the elaborated circuit of the netlist as a SPICE deck.
func (a *Architecture) SpiceDeck() (string, error) {
	// Elaborate with placeholder sources; the deck marks them for the user
	// to replace.
	waves := map[string]mna.Waveform{}
	for _, p := range a.Netlist.Ports {
		if p.Dir == netlist.In {
			waves[p.Name] = func(float64) float64 { return 0 }
		}
	}
	el, err := mna.Elaborate(a.Netlist, waves)
	if err != nil {
		return "", err
	}
	return el.Circuit.SpiceDeck(a.Netlist.Name), nil
}

// Process and SystemSpec re-export the estimation configuration.
type (
	// Process is a CMOS technology description.
	Process = estimate.Process
	// SystemSpec is the design-wide signal requirement.
	SystemSpec = estimate.SystemSpec
)

// SCN20 is the MOSIS SCN 2.0 µm-class process of the paper's experiments.
var SCN20 = estimate.SCN20

// Sizing runs the transistor-sizing step on the synthesized netlist (the
// VASE flow's stage after behavioral synthesis) and returns one sized
// two-stage op amp per instance.
func (a *Architecture) Sizing() ([]netlist.SizedOpAmp, error) {
	return a.Netlist.SizingReport(estimate.SCN20, estimate.DefaultSystemSpec())
}

// FormatSizing renders a sizing report as transistor dimension tables.
func FormatSizing(sized []netlist.SizedOpAmp) string {
	return netlist.FormatSizing(estimate.SCN20, sized)
}

// FormatDecisionTree renders a traced branch-and-bound decision tree
// (paper Figure 6 style). Synthesize with SynthesisOptions.Trace set.
func FormatDecisionTree(n *mapper.TreeNode) string { return mapper.FormatTree(n) }

// Benchmarks returns the paper's five benchmark applications.
func Benchmarks() []*corpus.Application { return corpus.Applications() }

// Benchmark returns one benchmark by key (receiver, powermeter, missile,
// itersolver, funcgen). An unknown key's error lists the valid keys.
func Benchmark(key string) (*corpus.Application, error) {
	app := corpus.ByKey(key)
	if app == nil {
		return nil, fmt.Errorf("vase: no benchmark %q (valid keys: %s)",
			key, strings.Join(corpus.Keys(), ", "))
	}
	return app, nil
}

package pipeline

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTemp plants a temp file in the cache dir as an interrupted atomic
// write would leave it, with the given age.
func writeTemp(t *testing.T, dir string, age time.Duration) string {
	t.Helper()
	f, err := os.CreateTemp(dir, tmpPrefix+"*.art")
	if err != nil {
		t.Fatalf("create temp: %v", err)
	}
	if _, err := f.WriteString("half-written artifact"); err != nil {
		t.Fatalf("write temp: %v", err)
	}
	f.Close()
	old := time.Now().Add(-age)
	if err := os.Chtimes(f.Name(), old, old); err != nil {
		t.Fatalf("age temp: %v", err)
	}
	return f.Name()
}

// TestDiskSweepsOrphanedTemps is the crash-simulation test: a writer that
// died between CreateTemp and the rename leaves a temp file behind; opening
// the store must reclaim it. A recent temp (a live write in another
// process) must survive the sweep.
func TestDiskSweepsOrphanedTemps(t *testing.T) {
	dir := t.TempDir()
	stale := writeTemp(t, dir, staleTempAge+time.Hour)
	fresh := writeTemp(t, dir, 0)

	if _, err := newDiskStore(dir, 0); err != nil {
		t.Fatalf("open store: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp %s survived the open-time sweep (err=%v)", filepath.Base(stale), err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Errorf("fresh temp %s was swept although it may be a live write: %v", filepath.Base(fresh), err)
	}
}

// TestDiskSweepRepeatedOpens models the pre-fix failure: every crashed run
// adds a temp file and nothing ever removes them. After the fix, reopening
// the directory holds the orphan population at zero.
func TestDiskSweepRepeatedOpens(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		writeTemp(t, dir, staleTempAge+time.Duration(i+1)*time.Minute)
		if _, err := newDiskStore(dir, 0); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Errorf("orphaned temp %s accumulated across opens", e.Name())
		}
	}
}

func TestDiskByteBudgetEviction(t *testing.T) {
	dir := t.TempDir()
	const artifact = 100 // bytes per artifact
	d, err := newDiskStore(dir, 3*artifact)
	if err != nil {
		t.Fatal(err)
	}
	payload := strings.Repeat("x", artifact)
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = keyOf("test/budget", fmt.Sprint(i))
		if err := d.write(StageCompile, keys[i], []byte(payload)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		// Space the mtimes out so LRU order is unambiguous on coarse
		// filesystem timestamps.
		old := time.Now().Add(-time.Duration(len(keys)-i) * time.Hour)
		if err := os.Chtimes(d.path(StageCompile, keys[i]), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if size, files := d.usage(); size > 3*artifact || files > 3 {
		t.Errorf("store holds %d bytes in %d files, budget is %d", size, files, 3*artifact)
	}
	// The oldest artifacts are the evicted ones.
	for i, k := range keys {
		_, ok := d.read(StageCompile, k)
		wantEvicted := i < 2
		if ok == wantEvicted {
			t.Errorf("artifact %d: present=%v, want evicted=%v", i, ok, wantEvicted)
		}
	}
	// An artifact larger than the whole budget is skipped, not stored.
	huge := keyOf("test/budget", "huge")
	if err := d.write(StageCompile, huge, []byte(strings.Repeat("y", 4*artifact))); err != nil {
		t.Fatalf("oversized write errored: %v", err)
	}
	if _, ok := d.read(StageCompile, huge); ok {
		t.Error("an artifact larger than the budget was stored")
	}
}

// TestDiskBudgetEndToEnd drives the eviction through the Pipeline API: a
// store too small for both artifacts keeps serving, just with misses.
func TestDiskBudgetEndToEnd(t *testing.T) {
	dir := t.TempDir()
	p := newPipe(t, Options{CacheDir: dir, CacheBytes: 1}) // evict ~everything
	if _, err := p.Compile(context.Background(), "mixer.vhd", mixerSrc); err != nil {
		t.Fatalf("compile: %v", err)
	}
	bytes, files, ok := p.DiskUsage()
	if !ok {
		t.Fatal("DiskUsage reported no disk store")
	}
	if bytes > 1 || files > 0 {
		t.Errorf("1-byte budget holds %d bytes in %d files", bytes, files)
	}
	// A second process over the same dir recomputes instead of failing.
	q := newPipe(t, Options{CacheDir: dir, CacheBytes: 1})
	cr, err := q.Compile(context.Background(), "mixer.vhd", mixerSrc)
	if err != nil {
		t.Fatalf("compile after eviction: %v", err)
	}
	if cr.Cached {
		t.Error("evicted artifact was served as a cache hit")
	}
}

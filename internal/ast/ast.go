// Package ast declares the abstract syntax tree for VASS, the VHDL-AMS
// subset for behavioral synthesis of analog systems.
//
// The tree mirrors the VASS constructs from the DATE'99 paper: design units
// (entities, architectures, packages), object declarations for quantities,
// signals, terminals and constants with synthesis annotations, concurrent
// statements (simple simultaneous, simultaneous if/use and case/use,
// procedural, process), and the sequential statements allowed inside
// procedural and process bodies. Every node carries a source span so that
// later passes can attach precise diagnostics.
package ast

import (
	"vase/internal/source"
	"vase/internal/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	Span() source.Span
}

// ---------------------------------------------------------------------------
// Names and common pieces

// Ident is an occurrence of an identifier. Name preserves the original
// spelling; Canon is the lower-cased canonical form used for lookup, since
// VHDL is case-insensitive.
type Ident struct {
	SpanV source.Span
	Name  string
	Canon string
}

// Span returns the source span of the identifier.
func (n *Ident) Span() source.Span { return n.SpanV }

// ObjectClass distinguishes the VHDL-AMS object classes that VASS admits.
type ObjectClass int

// Object classes of declared names.
const (
	ClassNone ObjectClass = iota
	ClassQuantity
	ClassSignal
	ClassTerminal
	ClassConstant
	ClassVariable
)

// String returns the lower-case keyword for the class.
func (c ObjectClass) String() string {
	switch c {
	case ClassQuantity:
		return "quantity"
	case ClassSignal:
		return "signal"
	case ClassTerminal:
		return "terminal"
	case ClassConstant:
		return "constant"
	case ClassVariable:
		return "variable"
	}
	return "none"
}

// Mode is a port direction.
type Mode int

// Port modes. ModeNone marks non-port declarations.
const (
	ModeNone Mode = iota
	ModeIn
	ModeOut
	ModeInOut
)

// String returns the lower-case keyword for the mode.
func (m Mode) String() string {
	switch m {
	case ModeIn:
		return "in"
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	}
	return ""
}

// Annotation is one synthesis annotation attached to a port or quantity
// declaration, such as "is voltage", "limited at 1.5", "drives 270.0 at
// 285.0e-3 peak", "range lo to hi", "frequency lo to hi" or "impedance z".
// Name is canonical (lower case); Args carries the argument expressions in
// declaration order.
type Annotation struct {
	SpanV source.Span
	Name  string
	Args  []Expr
}

// Span returns the source span of the annotation.
func (n *Annotation) Span() source.Span { return n.SpanV }

// ---------------------------------------------------------------------------
// Expressions

// Expr is the interface of all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Name is a reference to a declared object.
type Name struct {
	SpanV source.Span
	Ident *Ident
}

// IntLit is an integer literal.
type IntLit struct {
	SpanV source.Span
	Value int64
	Text  string
}

// RealLit is a floating-point literal.
type RealLit struct {
	SpanV source.Span
	Value float64
	Text  string
}

// BitLit is '0' or '1'.
type BitLit struct {
	SpanV source.Span
	Value bool // true for '1'
}

// StrLit is a string (bit-vector) literal.
type StrLit struct {
	SpanV source.Span
	Value string
}

// Unary is a prefix operation: -, +, not, abs.
type Unary struct {
	SpanV source.Span
	Op    token.Kind
	X     Expr
}

// Binary is an infix operation.
type Binary struct {
	SpanV source.Span
	Op    token.Kind
	X, Y  Expr
}

// Paren preserves explicit parenthesization.
type Paren struct {
	SpanV source.Span
	X     Expr
}

// Call is a function call or indexed name: f(a, b).
type Call struct {
	SpanV source.Span
	Fun   *Ident
	Args  []Expr
}

// Attribute is an attribute name such as line'ABOVE(vth), q'DOT or s'EVENT.
// Attr is canonical lower case.
type Attribute struct {
	SpanV source.Span
	X     Expr
	Attr  string
	Args  []Expr
}

// Span implementations.
func (n *Name) Span() source.Span      { return n.SpanV }
func (n *IntLit) Span() source.Span    { return n.SpanV }
func (n *RealLit) Span() source.Span   { return n.SpanV }
func (n *BitLit) Span() source.Span    { return n.SpanV }
func (n *StrLit) Span() source.Span    { return n.SpanV }
func (n *Unary) Span() source.Span     { return n.SpanV }
func (n *Binary) Span() source.Span    { return n.SpanV }
func (n *Paren) Span() source.Span     { return n.SpanV }
func (n *Call) Span() source.Span      { return n.SpanV }
func (n *Attribute) Span() source.Span { return n.SpanV }

func (*Name) exprNode()      {}
func (*IntLit) exprNode()    {}
func (*RealLit) exprNode()   {}
func (*BitLit) exprNode()    {}
func (*StrLit) exprNode()    {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Paren) exprNode()     {}
func (*Call) exprNode()      {}
func (*Attribute) exprNode() {}

// ---------------------------------------------------------------------------
// Types

// TypeRef names a type, optionally with an index or range constraint, e.g.
// "real", "bit_vector(3 downto 0)", "real_vector(1 to 4)".
type TypeRef struct {
	SpanV      source.Span
	Name       *Ident
	Constraint *RangeExpr // nil when unconstrained
}

// Span returns the source span of the type reference.
func (n *TypeRef) Span() source.Span { return n.SpanV }

// RangeExpr is "lo to hi" or "hi downto lo".
type RangeExpr struct {
	SpanV  source.Span
	Lo, Hi Expr
	Down   bool // true for downto
}

// Span returns the source span of the range.
func (n *RangeExpr) Span() source.Span { return n.SpanV }

// ---------------------------------------------------------------------------
// Declarations

// Decl is the interface of declaration nodes.
type Decl interface {
	Node
	declNode()
}

// ObjectDecl declares one or more objects of a common class and type:
// quantities, signals, terminals, constants, or variables. For ports, Mode
// is the direction; Annotations holds the synthesis annotations.
type ObjectDecl struct {
	SpanV       source.Span
	Class       ObjectClass
	Names       []*Ident
	Mode        Mode
	Type        *TypeRef
	Init        Expr // nil when absent
	Annotations []*Annotation
}

// FunctionDecl is a pure function usable from procedural statements.
type FunctionDecl struct {
	SpanV  source.Span
	Name   *Ident
	Params []*ObjectDecl
	Result *TypeRef
	Decls  []Decl
	Body   []SeqStmt
}

// Span implementations.
func (n *ObjectDecl) Span() source.Span   { return n.SpanV }
func (n *FunctionDecl) Span() source.Span { return n.SpanV }

func (*ObjectDecl) declNode()   {}
func (*FunctionDecl) declNode() {}

// ---------------------------------------------------------------------------
// Concurrent statements

// ConcStmt is the interface of concurrent (architecture-body) statements.
type ConcStmt interface {
	Node
	concNode()
}

// SimpleSimultaneous is "lhs == rhs;", a characteristic DAE expression.
type SimpleSimultaneous struct {
	SpanV source.Span
	Label string
	LHS   Expr
	RHS   Expr
}

// SimultaneousIf is "if cond use ... {elsif cond use ...} [else ...] end use;".
type SimultaneousIf struct {
	SpanV source.Span
	Label string
	Cond  Expr
	Then  []ConcStmt
	Elifs []*SimElif
	Else  []ConcStmt
}

// SimElif is one elsif arm of a SimultaneousIf.
type SimElif struct {
	SpanV source.Span
	Cond  Expr
	Then  []ConcStmt
}

// SimultaneousCase is "case expr use when choices => ... end case;".
type SimultaneousCase struct {
	SpanV source.Span
	Label string
	Expr  Expr
	Arms  []*CaseArm
}

// CaseArm is one "when choices => stmts" arm. A nil Choices means others.
type CaseArm struct {
	SpanV   source.Span
	Choices []Expr // nil for others
	Conc    []ConcStmt
	Seq     []SeqStmt
}

// Procedural is "procedural is <decls> begin <stmts> end procedural;",
// an explicit algorithmic description of continuous-time behavior.
type Procedural struct {
	SpanV source.Span
	Label string
	Decls []Decl
	Body  []SeqStmt
}

// Process is an event-driven process with a sensitivity list. VASS forbids
// wait statements; processes resume on events, run to completion, suspend.
type Process struct {
	SpanV       source.Span
	Label       string
	Sensitivity []Expr // names or attribute events such as line'above(vth)
	Decls       []Decl
	Body        []SeqStmt
}

// Span implementations.
func (n *SimpleSimultaneous) Span() source.Span { return n.SpanV }
func (n *SimultaneousIf) Span() source.Span     { return n.SpanV }
func (n *SimElif) Span() source.Span            { return n.SpanV }
func (n *SimultaneousCase) Span() source.Span   { return n.SpanV }
func (n *CaseArm) Span() source.Span            { return n.SpanV }
func (n *Procedural) Span() source.Span         { return n.SpanV }
func (n *Process) Span() source.Span            { return n.SpanV }

func (*SimpleSimultaneous) concNode() {}
func (*SimultaneousIf) concNode()     {}
func (*SimultaneousCase) concNode()   {}
func (*Procedural) concNode()         {}
func (*Process) concNode()            {}

// ---------------------------------------------------------------------------
// Sequential statements

// SeqStmt is the interface of sequential statements (procedural, process and
// function bodies).
type SeqStmt interface {
	Node
	seqNode()
}

// Assign is ":=" (variables, quantities in procedurals) or "<=" (signals);
// SignalOp distinguishes them.
type Assign struct {
	SpanV    source.Span
	LHS      Expr // Name or Call (indexed name)
	RHS      Expr
	SignalOp bool // true for <=
}

// IfStmt is a sequential if/elsif/else.
type IfStmt struct {
	SpanV source.Span
	Cond  Expr
	Then  []SeqStmt
	Elifs []*SeqElif
	Else  []SeqStmt
}

// SeqElif is one elsif arm of an IfStmt.
type SeqElif struct {
	SpanV source.Span
	Cond  Expr
	Then  []SeqStmt
}

// CaseStmt is a sequential case statement.
type CaseStmt struct {
	SpanV source.Span
	Expr  Expr
	Arms  []*CaseArm
}

// ForStmt is "for i in lo to hi loop ... end loop;". VASS requires the
// bounds to be statically known so the loop can be unrolled.
type ForStmt struct {
	SpanV source.Span
	Var   *Ident
	Range *RangeExpr
	Body  []SeqStmt
}

// WhileStmt is "while cond loop ... end loop;". VASS gives it sampling
// semantics (see the paper's Figure 4 translation).
type WhileStmt struct {
	SpanV source.Span
	Cond  Expr
	Body  []SeqStmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	SpanV source.Span
	Value Expr // nil for plain return
}

// NullStmt is "null;".
type NullStmt struct {
	SpanV source.Span
}

// Span implementations.
func (n *Assign) Span() source.Span     { return n.SpanV }
func (n *IfStmt) Span() source.Span     { return n.SpanV }
func (n *SeqElif) Span() source.Span    { return n.SpanV }
func (n *CaseStmt) Span() source.Span   { return n.SpanV }
func (n *ForStmt) Span() source.Span    { return n.SpanV }
func (n *WhileStmt) Span() source.Span  { return n.SpanV }
func (n *ReturnStmt) Span() source.Span { return n.SpanV }
func (n *NullStmt) Span() source.Span   { return n.SpanV }

func (*Assign) seqNode()     {}
func (*IfStmt) seqNode()     {}
func (*CaseStmt) seqNode()   {}
func (*ForStmt) seqNode()    {}
func (*WhileStmt) seqNode()  {}
func (*ReturnStmt) seqNode() {}
func (*NullStmt) seqNode()   {}

// ---------------------------------------------------------------------------
// Design units

// DesignUnit is the interface of library units.
type DesignUnit interface {
	Node
	unitNode()
}

// Entity is an entity declaration with its port clause.
type Entity struct {
	SpanV    source.Span
	Name     *Ident
	Generics []*ObjectDecl
	Ports    []*ObjectDecl
}

// Architecture is an architecture body bound to an entity.
type Architecture struct {
	SpanV  source.Span
	Name   *Ident
	Entity *Ident
	Decls  []Decl
	Stmts  []ConcStmt
}

// Package is a package declaration (constants and functions in VASS).
type Package struct {
	SpanV source.Span
	Name  *Ident
	Decls []Decl
}

// PackageBody is a package body carrying function bodies.
type PackageBody struct {
	SpanV source.Span
	Name  *Ident
	Decls []Decl
}

// Span implementations.
func (n *Entity) Span() source.Span       { return n.SpanV }
func (n *Architecture) Span() source.Span { return n.SpanV }
func (n *Package) Span() source.Span      { return n.SpanV }
func (n *PackageBody) Span() source.Span  { return n.SpanV }

func (*Entity) unitNode()       {}
func (*Architecture) unitNode() {}
func (*Package) unitNode()      {}
func (*PackageBody) unitNode()  {}

// DesignFile is the root of one parsed VASS source file.
type DesignFile struct {
	SpanV source.Span
	File  *source.File
	Units []DesignUnit
	// Recovered reports that the tree came from an error-recovering parse
	// that hit syntax errors. Resynchronization can repair the token stream
	// into well-formed nodes without leaving an ERROR node behind, so this
	// flag — not just HasErrors — is what marks downstream designs Partial.
	Recovered bool
}

// Span returns the span of the whole file.
func (n *DesignFile) Span() source.Span { return n.SpanV }

// Entities returns all entity declarations in the file, in order.
func (n *DesignFile) Entities() []*Entity {
	var out []*Entity
	for _, u := range n.Units {
		if e, ok := u.(*Entity); ok {
			out = append(out, e)
		}
	}
	return out
}

// Architectures returns all architecture bodies in the file, in order.
func (n *DesignFile) Architectures() []*Architecture {
	var out []*Architecture
	for _, u := range n.Units {
		if a, ok := u.(*Architecture); ok {
			out = append(out, a)
		}
	}
	return out
}

// Package interval implements closed-interval arithmetic over float64,
// shared by the spec generator's assertion derivation (internal/gen) and
// the abstract interpreter (internal/absint) so the two can never drift.
//
// An Interval is the set [Lo, Hi]. The zero value is the degenerate point
// {0}. Top() is the whole real line [-Inf, +Inf]; every transfer function
// here is a sound over-approximation of the corresponding concrete
// operation in internal/sim (Div/Log/Exp mirror the simulator's
// safeDiv/safeLog/clampExp guards exactly).
//
// All operations treat the interval as a value; none mutate the receiver.
package interval

import "math"

// Interval is a closed real interval [Lo, Hi].
type Interval struct{ Lo, Hi float64 }

// Point returns the degenerate interval {v}.
func Point(v float64) Interval { return Interval{v, v} }

// New returns [lo, hi], swapping the endpoints if given reversed.
func New(lo, hi float64) Interval {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{lo, hi}
}

// Top returns the whole real line.
func Top() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// IsTop reports whether both endpoints are infinite.
func (a Interval) IsTop() bool { return math.IsInf(a.Lo, -1) && math.IsInf(a.Hi, 1) }

// Bounded reports whether both endpoints are finite.
func (a Interval) Bounded() bool {
	return !math.IsInf(a.Lo, 0) && !math.IsInf(a.Hi, 0) &&
		!math.IsNaN(a.Lo) && !math.IsNaN(a.Hi)
}

// Span returns Hi - Lo.
func (a Interval) Span() float64 { return a.Hi - a.Lo }

// MaxAbs returns the largest absolute value in the interval.
func (a Interval) MaxAbs() float64 { return math.Max(math.Abs(a.Lo), math.Abs(a.Hi)) }

// Contains reports whether v lies in [Lo, Hi].
func (a Interval) Contains(v float64) bool { return a.Lo <= v && v <= a.Hi }

// Within reports whether a is entirely inside b.
func (a Interval) Within(b Interval) bool { return b.Lo <= a.Lo && a.Hi <= b.Hi }

// Add returns {x+y : x in a, y in b}.
func (a Interval) Add(b Interval) Interval { return Interval{a.Lo + b.Lo, a.Hi + b.Hi} }

// Sub returns {x-y : x in a, y in b}.
func (a Interval) Sub(b Interval) Interval { return Interval{a.Lo - b.Hi, a.Hi - b.Lo} }

// Neg returns {-x : x in a}.
func (a Interval) Neg() Interval { return Interval{-a.Hi, -a.Lo} }

// Hull returns the smallest interval containing both a and b.
func (a Interval) Hull(b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// Intersect returns the overlap of a and b; ok is false when they are
// disjoint (in which case the returned interval is meaningless).
func (a Interval) Intersect(b Interval) (Interval, bool) {
	lo, hi := math.Max(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)
	if lo > hi {
		return Interval{}, false
	}
	return Interval{lo, hi}, true
}

// prod multiplies endpoints with the convention 0 * ±Inf = 0, which keeps
// Top().Mul(Point(0)) sound (the concrete product of 0 with anything
// representable is 0, never NaN).
func prod(x, y float64) float64 {
	if x == 0 || y == 0 {
		return 0
	}
	return x * y
}

// Mul returns {x*y : x in a, y in b}.
func (a Interval) Mul(b Interval) Interval {
	p := [4]float64{prod(a.Lo, b.Lo), prod(a.Lo, b.Hi), prod(a.Hi, b.Lo), prod(a.Hi, b.Hi)}
	lo, hi := p[0], p[0]
	for _, v := range p[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return Interval{lo, hi}
}

// Abs returns {|x| : x in a}.
func (a Interval) Abs() Interval {
	if a.Lo >= 0 {
		return a
	}
	if a.Hi <= 0 {
		return a.Neg()
	}
	return Interval{0, a.MaxAbs()}
}

// Min returns {min(x,y) : x in a, y in b}.
func (a Interval) Min(b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)}
}

// Max returns {max(x,y) : x in a, y in b}.
func (a Interval) Max(b Interval) Interval {
	return Interval{math.Max(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// Clamp returns the image of a under clamping to [-limit, limit] — the
// transfer function of a limiter stage. The result is always bounded,
// even for Top input.
func (a Interval) Clamp(limit float64) Interval {
	return Interval{
		math.Max(-limit, math.Min(limit, a.Lo)),
		math.Max(-limit, math.Min(limit, a.Hi)),
	}
}

// DivEps is the denominator guard used by the behavioral simulator's
// safeDiv; Div mirrors it so static bounds stay sound for the simulated
// semantics.
const DivEps = 1e-9

// Div returns a sound hull of {x / guard(y)} where guard pushes
// denominators away from zero exactly like sim's safeDiv: |den| < DivEps
// is replaced by ±DivEps, keeping the sign. When b straddles zero the
// effective denominator magnitude is at least DivEps, so the result is
// finite (though typically enormous).
func (a Interval) Div(b Interval) Interval {
	// Split the denominator into its negative and positive guarded parts
	// and take the hull of the two quotients.
	var out Interval
	first := true
	quot := func(den Interval) {
		inv := Interval{1 / den.Hi, 1 / den.Lo}
		q := a.Mul(inv)
		if first {
			out, first = q, false
		} else {
			out = out.Hull(q)
		}
	}
	if b.Hi >= 0 {
		// Positive part: the guard maps [0, DivEps) up to DivEps, so the
		// positive denominators are [max(Lo, eps), max(Hi, eps)].
		quot(Interval{math.Max(b.Lo, DivEps), math.Max(b.Hi, DivEps)})
	}
	if b.Lo < 0 {
		quot(Interval{math.Min(b.Lo, -DivEps), math.Min(b.Hi, -DivEps)})
	}
	return out
}

// DivStrict returns the exact quotient hull {x/y : x in a, y in b} for a
// denominator that provably excludes zero; ok is false when 0 in b (the
// mathematical quotient is unbounded there — use Div for the simulator's
// guarded semantics instead).
func (a Interval) DivStrict(b Interval) (Interval, bool) {
	if b.Lo <= 0 && b.Hi >= 0 {
		return Interval{}, false
	}
	return a.Mul(Interval{1 / b.Hi, 1 / b.Lo}), true
}

// LogEps is the argument floor used by the simulator's safeLog.
const LogEps = 1e-12

// Log returns the hull of {log(max(LogEps, x)) : x in a}, matching sim's
// safeLog semantics.
func (a Interval) Log() Interval {
	return Interval{math.Log(math.Max(LogEps, a.Lo)), math.Log(math.Max(LogEps, a.Hi))}
}

// ExpClamp is the exponent clamp used by the simulator's clampExp.
const ExpClamp = 50

// Exp returns the hull of {exp(clamp(x, ±ExpClamp)) : x in a}, matching
// sim's clampExp semantics. The result is always bounded.
func (a Interval) Exp() Interval {
	c := func(x float64) float64 { return math.Min(ExpClamp, math.Max(-ExpClamp, x)) }
	return Interval{math.Exp(c(a.Lo)), math.Exp(c(a.Hi))}
}

// Sqrt returns the hull of {sqrt(max(0, x)) : x in a}.
func (a Interval) Sqrt() Interval {
	return Interval{math.Sqrt(math.Max(0, a.Lo)), math.Sqrt(math.Max(0, a.Hi))}
}

// Sin returns the exact hull of {sin(x) : x in a}: the endpoint values,
// stretched to ±1 when the interval encloses a maximum (π/2 + 2kπ) or
// minimum (-π/2 + 2kπ).
func (a Interval) Sin() Interval { return trig(a, math.Sin, math.Pi/2, -math.Pi/2) }

// Cos returns the exact hull of {cos(x) : x in a} (maxima at 2kπ, minima
// at π + 2kπ).
func (a Interval) Cos() Interval { return trig(a, math.Cos, 0, math.Pi) }

// containsPhase reports whether [lo, hi] contains any point c + 2kπ.
func containsPhase(lo, hi, c float64) bool {
	if math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return true
	}
	k := math.Ceil((lo - c) / (2 * math.Pi))
	return c+2*math.Pi*k <= hi
}

func trig(a Interval, f func(float64) float64, maxAt, minAt float64) Interval {
	if a.Lo == a.Hi {
		return Point(f(a.Lo))
	}
	lo, hi := f(a.Lo), f(a.Hi)
	if lo > hi {
		lo, hi = hi, lo
	}
	if containsPhase(a.Lo, a.Hi, maxAt) {
		hi = 1
	}
	if containsPhase(a.Lo, a.Hi, minAt) {
		lo = -1
	}
	return Interval{lo, hi}
}

// SignHull returns the image of a under the sign function ({-1,0,1}).
func (a Interval) SignHull() Interval {
	switch {
	case a.Lo > 0:
		return Point(1)
	case a.Hi < 0:
		return Point(-1)
	case a.Lo == 0 && a.Hi == 0:
		return Point(0)
	case a.Lo >= 0:
		return Interval{0, 1}
	case a.Hi <= 0:
		return Interval{-1, 0}
	}
	return Interval{-1, 1}
}

// Widen returns the classic interval widening of a by b: any endpoint of
// b that escapes a jumps to infinity. Widen guarantees termination of
// ascending fixpoint chains in at most two steps per bound.
func (a Interval) Widen(b Interval) Interval {
	w := a
	if b.Lo < a.Lo {
		w.Lo = math.Inf(-1)
	}
	if b.Hi > a.Hi {
		w.Hi = math.Inf(1)
	}
	return w
}

// Tri is a three-valued truth value for predicates evaluated over
// intervals: True and False hold for every point of the interval; Maybe
// means the interval contains both satisfying and violating points (or
// the analysis cannot tell).
type Tri int

// The three truth values. Maybe is the zero value so that "unknown" is
// the default.
const (
	Maybe Tri = iota
	True
	False
)

// String renders the truth value.
func (t Tri) String() string {
	switch t {
	case True:
		return "true"
	case False:
		return "false"
	}
	return "maybe"
}

// Not negates a three-valued truth value.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	}
	return Maybe
}

// And conjoins two three-valued truth values (Kleene strong logic).
func (t Tri) And(u Tri) Tri {
	if t == False || u == False {
		return False
	}
	if t == True && u == True {
		return True
	}
	return Maybe
}

// Or disjoins two three-valued truth values (Kleene strong logic).
func (t Tri) Or(u Tri) Tri {
	if t == True || u == True {
		return True
	}
	if t == False && u == False {
		return False
	}
	return Maybe
}

// FromBool lifts a concrete boolean.
func FromBool(b bool) Tri {
	if b {
		return True
	}
	return False
}

// Cmp evaluates "a op b" over all pairs (x in a, y in b) three-valuedly.
// Supported operators: "<", "<=", ">", ">=", "=", "/=".
func Cmp(a Interval, op string, b Interval) Tri {
	switch op {
	case "<":
		if a.Hi < b.Lo {
			return True
		}
		if a.Lo >= b.Hi {
			return False
		}
	case "<=":
		if a.Hi <= b.Lo {
			return True
		}
		if a.Lo > b.Hi {
			return False
		}
	case ">":
		return Cmp(b, "<", a)
	case ">=":
		return Cmp(b, "<=", a)
	case "=":
		if a.Lo == a.Hi && b.Lo == b.Hi && a.Lo == b.Lo {
			return True
		}
		if _, ok := a.Intersect(b); !ok {
			return False
		}
	case "/=":
		return Cmp(a, "=", b).Not()
	}
	return Maybe
}

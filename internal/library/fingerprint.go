package library

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
)

// kindFromString is the inverse of CellKind.String, built once from the
// mnemonic table.
var kindFromString = func() map[string]CellKind {
	m := make(map[string]CellKind, len(cellKindNames))
	for k, name := range cellKindNames {
		m[name] = CellKind(k)
	}
	return m
}()

// KindFromString resolves a cell-kind mnemonic (the CellKind.String form,
// e.g. "summing_amp") back to its kind. ok is false for unknown mnemonics.
func KindFromString(name string) (CellKind, bool) {
	k, ok := kindFromString[name]
	return k, ok
}

var fingerprintOnce struct {
	sync.Once
	hex string
}

// Fingerprint returns a stable SHA-256 hex digest of the whole cell
// catalog: every cell's kind, name, op-amp budget, device counts, fan-in
// limit and gain range. It is one of the inputs of the pipeline's
// content-addressed cache keys (DESIGN.md §10), so any catalog edit — a new
// cell, a different op-amp budget, a widened gain range — invalidates every
// cached synthesis result.
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		h := sha256.New()
		var b strings.Builder
		for _, c := range Catalog() {
			b.Reset()
			fmt.Fprintf(&b, "%d|%s|%d|r%d|c%d|d%d|s%d|in%d|g%g:%g\n",
				int(c.Kind), c.Name, c.OpAmps,
				c.Resistors, c.Capacitors, c.Diodes, c.Switches,
				c.MaxInputs, c.GainMin, c.GainMax)
			h.Write([]byte(b.String()))
		}
		fingerprintOnce.hex = hex.EncodeToString(h.Sum(nil))
	})
	return fingerprintOnce.hex
}

package pipeline

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vase/internal/mapper"
	"vase/internal/vhif"
)

const mixerSrc = `
entity mixer is
  port (
    quantity a : in real is voltage;
    quantity b : in real is voltage;
    quantity y : out real is voltage
  );
end entity;
architecture beh of mixer is
begin
  y == 3.0 * a + 2.0 * b;
end architecture;
`

func newPipe(t *testing.T, opts Options) *Pipeline {
	t.Helper()
	p, err := New(opts)
	if err != nil {
		t.Fatalf("new pipeline: %v", err)
	}
	return p
}

func TestCompileMemoized(t *testing.T) {
	p := newPipe(t, Options{})
	ctx := context.Background()
	first, err := p.Compile(ctx, "mixer.vhd", mixerSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if first.Cached {
		t.Error("first compile reported Cached")
	}
	if first.AST == nil || first.Sema == nil {
		t.Error("computed compile lost the AST or symbol tables")
	}
	second, err := p.Compile(ctx, "mixer.vhd", mixerSrc)
	if err != nil {
		t.Fatalf("recompile: %v", err)
	}
	if !second.Cached {
		t.Error("second compile of identical source was not a cache hit")
	}
	if second.Module != first.Module {
		t.Error("cache hit did not share the immutable module")
	}
	st := p.Stats().Stage(StageCompile)
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("compile stage counters = %+v, want 1 miss and 1 memory hit", st)
	}
	// A different file name is a different artifact.
	if _, err := p.Compile(ctx, "other.vhd", mixerSrc); err != nil {
		t.Fatalf("compile under other name: %v", err)
	}
	if st := p.Stats().Stage(StageCompile); st.Misses != 2 {
		t.Errorf("renamed source did not recompile: %+v", st)
	}
}

func TestSynthesizeWarm(t *testing.T) {
	p := newPipe(t, Options{})
	ctx := context.Background()
	opts := mapper.DefaultOptions()
	cold, _, cachedCold, err := p.Synthesize(ctx, "mixer.vhd", mixerSrc, opts)
	if err != nil {
		t.Fatalf("cold synthesize: %v", err)
	}
	if cachedCold {
		t.Error("cold synthesis reported cached")
	}
	warm, _, cachedWarm, err := p.Synthesize(ctx, "mixer.vhd", mixerSrc, opts)
	if err != nil {
		t.Fatalf("warm synthesize: %v", err)
	}
	if !cachedWarm {
		t.Error("warm synthesis was not a cache hit")
	}
	if a, b := cold.Netlist.Dump(), warm.Netlist.Dump(); a != b {
		t.Errorf("warm netlist differs:\n--- cold ---\n%s--- warm ---\n%s", a, b)
	}
	if cold.Netlist == warm.Netlist {
		t.Error("cache hit shared the mutable netlist instead of materializing a fresh one")
	}
	if cold.Report.AreaUm2 != warm.Report.AreaUm2 || cold.Report.OpAmps != warm.Report.OpAmps {
		t.Errorf("warm report differs: %+v vs %+v", cold.Report, warm.Report)
	}
	if cold.Stats.NodesVisited != warm.Stats.NodesVisited {
		t.Errorf("cache hit did not report the original search stats: %d vs %d",
			cold.Stats.NodesVisited, warm.Stats.NodesVisited)
	}
	ms := p.Stats().Stage(StageMap)
	if ms.Misses != 1 || ms.Hits != 1 {
		t.Errorf("map stage counters = %+v, want 1 miss and 1 hit", ms)
	}
	// Materialization runs on both passes.
	if nls := p.Stats().Stage(StageNetlist); nls.Misses != 2 {
		t.Errorf("netlist stage ran %d times, want 2", nls.Misses)
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	opts := mapper.DefaultOptions()

	a := newPipe(t, Options{CacheDir: dir})
	resA, crA, _, err := a.Synthesize(ctx, "mixer.vhd", mixerSrc, opts)
	if err != nil {
		t.Fatalf("first process synthesize: %v", err)
	}

	// A second pipeline over the same directory models a second process:
	// nothing in memory, everything served from disk.
	b := newPipe(t, Options{CacheDir: dir})
	resB, crB, cached, err := b.Synthesize(ctx, "mixer.vhd", mixerSrc, opts)
	if err != nil {
		t.Fatalf("second process synthesize: %v", err)
	}
	if !cached || !crB.Cached {
		t.Error("second process did not hit the disk cache")
	}
	st := b.Stats()
	if cs := st.Stage(StageCompile); cs.DiskHits != 1 || cs.Misses != 0 {
		t.Errorf("compile stage = %+v, want 1 disk hit and no misses", cs)
	}
	if ms := st.Stage(StageMap); ms.DiskHits != 1 || ms.Misses != 0 {
		t.Errorf("map stage = %+v, want 1 disk hit and no misses", ms)
	}
	if crB.AST != nil || crB.Sema != nil {
		t.Error("disk artifact claims to carry an AST or symbol tables")
	}
	if crB.Name != crA.Name || crB.Text != crA.Text || crB.Stats != crA.Stats {
		t.Errorf("disk compile artifact differs: %+v vs %+v", crB, crA)
	}
	if x, y := resA.Netlist.Dump(), resB.Netlist.Dump(); x != y {
		t.Errorf("disk netlist differs:\n--- computed ---\n%s--- disk ---\n%s", x, y)
	}
	if resA.Stats != resB.Stats {
		t.Errorf("disk map artifact lost the search stats: %+v vs %+v", resA.Stats, resB.Stats)
	}
}

func TestCorruptDiskArtifactRecomputes(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	a := newPipe(t, Options{CacheDir: dir})
	if _, err := a.Compile(ctx, "mixer.vhd", mixerSrc); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := a.disk.write(StageCompile, CompileKey("mixer.vhd", mixerSrc), []byte("garbage")); err != nil {
		t.Fatalf("corrupt artifact: %v", err)
	}
	b := newPipe(t, Options{CacheDir: dir})
	cr, err := b.Compile(ctx, "mixer.vhd", mixerSrc)
	if err != nil {
		t.Fatalf("compile over corrupt artifact: %v", err)
	}
	if cr.Cached {
		t.Error("corrupt artifact was served as a cache hit")
	}
	if st := b.Stats().Stage(StageCompile); st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("compile stage = %+v, want a recompute", st)
	}
	// The recompute replaced the corrupt artifact.
	c := newPipe(t, Options{CacheDir: dir})
	if cr, err := c.Compile(ctx, "mixer.vhd", mixerSrc); err != nil || !cr.Cached {
		t.Errorf("repaired artifact not served from disk (err=%v cached=%v)", err, cr != nil && cr.Cached)
	}
}

func TestNeverCacheDegraded(t *testing.T) {
	p := newPipe(t, Options{CacheDir: t.TempDir()})
	opts := mapper.DefaultOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, cached, err := p.SynthesizeModule(ctx, mustModule(t, p), opts)
	if err != nil {
		t.Fatalf("cancelled synthesize: %v", err)
	}
	if cached {
		t.Error("cancelled synthesis reported cached")
	}
	if !res.Nonoptimal {
		t.Fatal("cancelled synthesis did not mark the result Nonoptimal")
	}
	// The degraded incumbent must not poison later full runs.
	full, cached, err := p.SynthesizeModule(context.Background(), mustModule(t, p), opts)
	if err != nil {
		t.Fatalf("full synthesize: %v", err)
	}
	if cached {
		t.Error("full run was served the degraded cached result")
	}
	if full.Nonoptimal {
		t.Error("full run is marked Nonoptimal")
	}
	if ms := p.Stats().Stage(StageMap); ms.Misses != 2 || ms.Hits != 0 || ms.DiskHits != 0 {
		t.Errorf("map stage = %+v, want 2 misses and no hits", ms)
	}
	// And only the full result becomes cacheable.
	again, cached, err := p.SynthesizeModule(context.Background(), mustModule(t, p), opts)
	if err != nil || !cached || again.Nonoptimal {
		t.Errorf("third run: err=%v cached=%v nonoptimal=%v, want a clean cache hit", err, cached, again.Nonoptimal)
	}
}

func TestTraceBypassesCache(t *testing.T) {
	p := newPipe(t, Options{})
	opts := mapper.DefaultOptions()
	m := mustModule(t, p)
	if _, _, err := p.SynthesizeModule(context.Background(), m, opts); err != nil {
		t.Fatalf("warmup synthesize: %v", err)
	}
	opts.Trace = true
	res, cached, err := p.SynthesizeModule(context.Background(), m, opts)
	if err != nil {
		t.Fatalf("traced synthesize: %v", err)
	}
	if cached {
		t.Error("traced run was served from cache")
	}
	if res.Tree == nil {
		t.Error("traced run has no decision tree")
	}
}

func mustModule(t *testing.T, p *Pipeline) *vhif.Module {
	t.Helper()
	cr, err := p.Compile(context.Background(), "mixer.vhd", mixerSrc)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return cr.Module
}

func TestMemoSingleFlight(t *testing.T) {
	p := newPipe(t, Options{})
	key := keyOf("test/flight", "k")
	started := make(chan struct{})
	release := make(chan struct{})
	computes := 0
	var mu sync.Mutex

	compute := func(ctx context.Context) (any, bool, error) {
		mu.Lock()
		computes++
		mu.Unlock()
		close(started)
		<-release
		return "value", true, nil
	}

	const waiters = 4
	var wg sync.WaitGroup
	wg.Add(waiters)
	results := make([]any, waiters)
	go func() {
		// Leader.
		v, _, err := p.memo(context.Background(), StageMap, key, nil, compute)
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0] = v
		wg.Done()
	}()
	<-started
	for i := 1; i < waiters; i++ {
		i := i
		go func() {
			v, _, err := p.memo(context.Background(), StageMap, key, nil, compute)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
			wg.Done()
		}()
	}
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Errorf("compute ran %d times, want 1", computes)
	}
	for i, v := range results {
		if v != "value" {
			t.Errorf("caller %d got %v", i, v)
		}
	}
	st := p.Stats().Stage(StageMap)
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Shared != waiters-1 {
		t.Errorf("hits+shared = %d, want %d (stats %+v)", st.Hits+st.Shared, waiters-1, st)
	}
}

// refsOf reports the current waiter count of the key's flight (0 when no
// flight is registered).
func refsOf(p *Pipeline, key Key) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f := p.flights[key]; f != nil {
		return f.refs
	}
	return 0
}

// TestMemoFollowerSurvivesLeaderCancel is the regression test for the
// single-flight detachment bugfix: a follower joining a computation led by
// a request whose context is then cancelled must NOT inherit the leader's
// cancellation. On the pre-fix pipeline (compute running under the
// leader's context) the cancel kills the shared computation, the follower
// re-elects itself and computes a second time — so the computes==1
// assertion fails there.
func TestMemoFollowerSurvivesLeaderCancel(t *testing.T) {
	p := newPipe(t, Options{})
	key := keyOf("test/detach", "k")
	started := make(chan struct{})
	release := make(chan struct{})
	var computes atomic.Int64

	compute := func(ctx context.Context) (any, bool, error) {
		if computes.Add(1) == 1 {
			close(started)
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-release:
			return "value", true, nil
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := p.memo(leaderCtx, StageMap, key, nil, compute)
		leaderDone <- err
	}()
	<-started

	followerDone := make(chan struct{})
	var got any
	var gotErr error
	go func() {
		defer close(followerDone)
		got, _, gotErr = p.memo(context.Background(), StageMap, key, nil, compute)
	}()
	// Wait until the follower is registered on the flight, then cancel the
	// leader out from under it.
	for refsOf(p, key) < 2 {
		time.Sleep(100 * time.Microsecond)
	}
	cancelLeader()
	if err := <-leaderDone; err == nil {
		t.Error("cancelled leader did not observe its own cancellation")
	}
	close(release)
	<-followerDone

	if gotErr != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", gotErr)
	}
	if got != "value" {
		t.Errorf("follower got %v, want the shared computation's value", got)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1 (the shared flight must survive the leader's cancel)", n)
	}
}

// TestMemoWaiterRetriesAfterAbandonedFlight covers leader re-election: a
// caller that joins a flight just as its last waiter departs (cancelling
// the shared computation) must retry with its own computation instead of
// inheriting the stranger's cancellation.
func TestMemoWaiterRetriesAfterAbandonedFlight(t *testing.T) {
	p := newPipe(t, Options{})
	key := keyOf("test/retry", "k")
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	started := make(chan struct{})
	cancelling := make(chan struct{})
	proceed := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := p.memo(leaderCtx, StageMap, key, nil, func(ctx context.Context) (any, bool, error) {
			close(started)
			<-ctx.Done()
			close(cancelling)
			<-proceed // hold the dying flight open so the late joiner lands on it
			return nil, false, ctx.Err()
		})
		leaderDone <- err
	}()
	<-started
	cancelLeader()
	<-cancelling

	done := make(chan struct{})
	var got any
	var gotErr error
	go func() {
		defer close(done)
		got, _, gotErr = p.memo(context.Background(), StageMap, key, nil,
			func(ctx context.Context) (any, bool, error) { return "fresh", true, nil })
	}()
	// The joiner may land on the dying flight or arrive after it is gone;
	// both paths must end in a fresh computation.
	close(proceed)
	<-done
	if err := <-leaderDone; err == nil {
		t.Error("cancelled leader succeeded")
	}
	if gotErr != nil {
		t.Fatalf("patient waiter inherited the abandoned flight's cancellation: %v", gotErr)
	}
	if got != "fresh" {
		t.Errorf("waiter got %v, want its own recomputation", got)
	}
}

// TestMemoInternalCtxErrorNotRetried pins the boundary of leader
// re-election: a computation that returns a context error of its own
// making (an internal deadline, not a departing waiter) is delivered
// as-is — retrying it would loop forever.
func TestMemoInternalCtxErrorNotRetried(t *testing.T) {
	p := newPipe(t, Options{})
	key := keyOf("test/internal-err", "k")
	var computes atomic.Int64
	_, _, err := p.memo(context.Background(), StageMap, key, nil,
		func(ctx context.Context) (any, bool, error) {
			computes.Add(1)
			return nil, false, fmt.Errorf("search deadline: %w", context.DeadlineExceeded)
		})
	if err == nil {
		t.Fatal("internal deadline error was swallowed")
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want exactly 1 (no retry of internal ctx errors)", n)
	}
}

func TestLRUEviction(t *testing.T) {
	p := newPipe(t, Options{MemoryEntries: 2})
	ctx := context.Background()
	compute := func(v string) func(context.Context) (any, bool, error) {
		return func(context.Context) (any, bool, error) { return v, true, nil }
	}
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := p.memo(ctx, StageParse, keyOf("test/lru", k), nil, compute(k)); err != nil {
			t.Fatal(err)
		}
	}
	// "a" was evicted by "c"; "b" and "c" remain.
	if _, src, _ := p.memo(ctx, StageParse, keyOf("test/lru", "b"), nil, compute("b")); src != srcMemory {
		t.Errorf("b: source %v, want memory hit", src)
	}
	if _, src, _ := p.memo(ctx, StageParse, keyOf("test/lru", "a"), nil, compute("a")); src != srcCompute {
		t.Errorf("a: source %v, want recompute after eviction", src)
	}
}

func TestStatsString(t *testing.T) {
	p := newPipe(t, Options{})
	if _, err := p.Compile(context.Background(), "mixer.vhd", mixerSrc); err != nil {
		t.Fatal(err)
	}
	out := p.Stats().String()
	for _, want := range []string{"stage", "compile", "map", "mem-hit", "miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats table lacks %q:\n%s", want, out)
		}
	}
}

// Package mna implements a small analog circuit simulator based on
// modified nodal analysis: resistors, capacitors, independent and
// controlled sources, diodes, voltage-controlled switches, and saturating
// op-amp macromodels, with Newton-Raphson DC solution and fixed-step
// backward-Euler transient analysis.
//
// It substitutes for the SPICE runs of the paper's Section 6: synthesized
// netlists elaborate into op-amp macromodel circuits (see Elaborate) whose
// transient response reproduces the receiver experiment of Figure 8 —
// amplification, comparator-controlled gain switching, and diode clipping
// of the output stage.
package mna

import (
	"context"
	"fmt"
	"math"
)

// Node identifies a circuit node; 0 is ground.
type Node int

// Ground is the reference node.
const Ground Node = 0

// Waveform is a time-dependent source value.
type Waveform func(t float64) float64

// deviceKind enumerates element types.
type deviceKind int

const (
	dResistor deviceKind = iota
	dCapacitor
	dVSource
	dISource
	dVCVS
	dDiode
	dSwitch
	dOpAmp
	dFunc
)

// device is one circuit element.
type device struct {
	kind deviceKind
	name string
	// Terminals (interpretation depends on kind).
	a, b, cp, cm Node
	// value: R ohms, C farads, VCVS gain.
	value float64
	// wave drives independent sources.
	wave Waveform
	// ic is the capacitor initial voltage.
	ic float64
	// Diode parameters.
	isat, vt float64
	// Switch parameters.
	ron, roff, vth float64
	// Op amp parameters: open-loop gain and saturation.
	gain, vmax float64
	// Newton limiting memory (pnjlim-style) for the op amp knee.
	lastVc  float64
	hasLast bool
	// branch is the extra MNA variable index for sources/op amps.
	branch int
	// f is the nonlinear function of a dFunc element; ctrl its inputs.
	f    func(v []float64) float64
	ctrl []Node
}

// Method selects the transient integration scheme.
type Method int

// Integration methods.
const (
	// BackwardEuler is robust and strongly damped (the default).
	BackwardEuler Method = iota
	// Trapezoidal is second-order accurate with no numerical damping.
	Trapezoidal
)

// Circuit is a netlist of MNA devices.
type Circuit struct {
	names   map[string]Node
	nodes   int // highest node index
	devices []*device
	// method is the transient integration scheme.
	method Method
	// prevI holds each capacitor's previous-step current (trapezoidal).
	prevI map[*device]float64

	// MaxNewtonIter bounds the Newton iteration count per solve point
	// (0 = the default of 300). Exceeding it is a convergence error.
	MaxNewtonIter int
	// MaxTranSteps bounds the number of transient steps (0 = unlimited).
	// When it binds the transient returns the truncated trace computed so
	// far with Tran.Truncated set, not an error.
	MaxTranSteps int
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		names: map[string]Node{"0": Ground, "gnd": Ground},
		prevI: map[*device]float64{},
	}
}

// SetMethod selects the transient integration scheme.
func (c *Circuit) SetMethod(m Method) { c.method = m }

// NodeByName interns a named node.
func (c *Circuit) NodeByName(name string) Node {
	if n, ok := c.names[name]; ok {
		return n
	}
	c.nodes++
	n := Node(c.nodes)
	c.names[name] = n
	return n
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return c.nodes }

func (c *Circuit) track(ns ...Node) {
	for _, n := range ns {
		if int(n) > c.nodes {
			c.nodes = int(n)
		}
	}
}

// AddR connects a resistor between a and b.
func (c *Circuit) AddR(name string, a, b Node, ohms float64) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dResistor, name: name, a: a, b: b, value: ohms})
}

// AddC connects a capacitor with an initial voltage.
func (c *Circuit) AddC(name string, a, b Node, farads, ic float64) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dCapacitor, name: name, a: a, b: b, value: farads, ic: ic})
}

// AddV connects an independent voltage source (a positive w.r.t. b).
func (c *Circuit) AddV(name string, a, b Node, wave Waveform) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dVSource, name: name, a: a, b: b, wave: wave})
}

// AddI connects an independent current source flowing from a to b.
func (c *Circuit) AddI(name string, a, b Node, wave Waveform) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dISource, name: name, a: a, b: b, wave: wave})
}

// AddVCVS connects a linear voltage-controlled voltage source:
// V(a,b) = gain * V(cp,cm).
func (c *Circuit) AddVCVS(name string, a, b, cp, cm Node, gain float64) {
	c.track(a, b, cp, cm)
	c.devices = append(c.devices, &device{kind: dVCVS, name: name, a: a, b: b, cp: cp, cm: cm, value: gain})
}

// AddDiode connects a diode (anode a, cathode b).
func (c *Circuit) AddDiode(name string, a, b Node) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dDiode, name: name, a: a, b: b, isat: 1e-14, vt: 0.02585})
}

// AddSwitch connects a voltage-controlled switch between a and b, closed
// when V(cp,cm) > vth.
func (c *Circuit) AddSwitch(name string, a, b, cp, cm Node, ron, roff, vth float64) {
	c.track(a, b, cp, cm)
	c.devices = append(c.devices, &device{
		kind: dSwitch, name: name, a: a, b: b, cp: cp, cm: cm,
		ron: ron, roff: roff, vth: vth,
	})
}

// AddOpAmp connects a saturating op-amp macromodel: a single-ended output
// at node a driven to vmax*tanh(gain*V(cp,cm)/vmax).
func (c *Circuit) AddOpAmp(name string, a, cp, cm Node, gain, vmax float64) {
	c.track(a, cp, cm)
	c.devices = append(c.devices, &device{
		kind: dOpAmp, name: name, a: a, cp: cp, cm: cm, gain: gain, vmax: vmax,
	})
}

// AddFunc connects a behavioral voltage source: V(a) = f(V(ctrl[0]), ...).
// It models computational cells (multipliers, log elements) whose
// transistor-level detail is outside the macromodel scope.
func (c *Circuit) AddFunc(name string, a Node, ctrl []Node, f func(v []float64) float64) {
	c.track(a)
	c.track(ctrl...)
	c.devices = append(c.devices, &device{kind: dFunc, name: name, a: a, ctrl: ctrl, f: f})
}

// assignBranches numbers the extra MNA variables.
func (c *Circuit) assignBranches() int {
	nb := 0
	for _, d := range c.devices {
		switch d.kind {
		case dVSource, dVCVS, dOpAmp, dFunc:
			d.branch = c.nodes + 1 + nb
			nb++
		}
	}
	return nb
}

// Solution is one operating point: index 1..NumNodes are node voltages.
type Solution []float64

// V returns the voltage of node n.
func (s Solution) V(n Node) float64 {
	if n == Ground || int(n) >= len(s) {
		return 0
	}
	return s[n]
}

// stamp builds the linearized MNA system around the iterate x at time t.
// h <= 0 means DC (capacitors open). prev is the previous-step solution for
// companion models.
func (c *Circuit) stamp(m *matrix, x Solution, prev Solution, t, h float64) {
	m.clear()
	vx := func(n Node) float64 {
		if n == Ground {
			return 0
		}
		return x[n]
	}
	for _, d := range c.devices {
		switch d.kind {
		case dResistor:
			g := 1 / d.value
			m.addG(d.a, d.b, g)
		case dCapacitor:
			if h <= 0 {
				// DC: tiny conductance to avoid floating nodes.
				m.addG(d.a, d.b, 1e-12)
				continue
			}
			vprev := prev.V(d.a) - prev.V(d.b)
			if c.method == Trapezoidal {
				// Companion model: i = (2C/h)(v - vprev) - iprev.
				g := 2 * d.value / h
				m.addG(d.a, d.b, g)
				m.addI(d.a, d.b, g*vprev+c.prevI[d])
			} else {
				g := d.value / h
				m.addG(d.a, d.b, g)
				m.addI(d.a, d.b, g*vprev)
			}
		case dVSource:
			m.stampVSource(d.branch, d.a, d.b, d.wave(t))
		case dISource:
			m.addI(d.a, d.b, -d.wave(t))
		case dVCVS:
			// V(a,b) - gain*V(cp,cm) = 0 with branch current into a.
			m.a[d.branch][d.a] += 1
			m.a[d.branch][d.b] -= 1
			m.a[d.branch][d.cp] -= d.value
			m.a[d.branch][d.cm] += d.value
			m.a[d.a][d.branch] += 1
			m.a[d.b][d.branch] -= 1
		case dDiode:
			v := vx(d.a) - vx(d.b)
			// Limit the junction voltage for convergence.
			if v > 0.9 {
				v = 0.9
			}
			e := math.Exp(v / d.vt)
			i := d.isat * (e - 1)
			g := d.isat * e / d.vt
			if g < 1e-12 {
				g = 1e-12
			}
			ieq := i - g*v
			m.addG(d.a, d.b, g)
			m.addI(d.a, d.b, -ieq)
		case dSwitch:
			vc := vx(d.cp) - vx(d.cm)
			r := d.roff
			if vc > d.vth {
				r = d.ron
			}
			m.addG(d.a, d.b, 1/r)
		case dOpAmp:
			vc := vx(d.cp) - vx(d.cm)
			knee := d.vmax / d.gain
			// Deep saturation is flat: clamping the linearization point to
			// ±20 knee widths leaves the model output unchanged but keeps
			// the point a few iterations away from the active region.
			if vc > 20*knee {
				vc = 20 * knee
			} else if vc < -20*knee {
				vc = -20 * knee
			}
			// Limit the per-iteration excursion to a few knee widths
			// (SPICE junction-limiting style) so Newton cannot jump across
			// the knee and oscillate.
			if d.hasLast {
				lim := 4 * knee
				if vc > d.lastVc+lim {
					vc = d.lastVc + lim
				} else if vc < d.lastVc-lim {
					vc = d.lastVc - lim
				}
			}
			d.lastVc = vc
			d.hasLast = true
			arg := d.gain * vc / d.vmax
			out := d.vmax * math.Tanh(arg)
			// Derivative of the saturating characteristic.
			sech := 1 / math.Cosh(arg)
			dg := d.gain * sech * sech
			// Equation: V(a) - (out + dg*(vc' - vc)) = 0.
			m.a[d.branch][d.a] += 1
			m.a[d.branch][d.cp] -= dg
			m.a[d.branch][d.cm] += dg
			m.rhs[d.branch] += out - dg*vc
			m.a[d.a][d.branch] += 1
		case dFunc:
			vals := make([]float64, len(d.ctrl))
			for i, n := range d.ctrl {
				vals[i] = vx(n)
			}
			out := d.f(vals)
			// Numeric Jacobian w.r.t. each control.
			m.a[d.branch][d.a] += 1
			rhs := out
			const eps = 1e-6
			for i, n := range d.ctrl {
				if n == Ground {
					continue
				}
				vals[i] += eps
				dp := (d.f(vals) - out) / eps
				vals[i] -= eps
				m.a[d.branch][n] -= dp
				rhs -= dp * vals[i]
			}
			m.rhs[d.branch] += rhs
			m.a[d.a][d.branch] += 1
		}
	}
}

// matrix is a dense MNA system Ax = b with ground row/column folded away.
type matrix struct {
	n   int
	a   [][]float64
	rhs []float64
}

func newMatrix(n int) *matrix {
	m := &matrix{n: n, rhs: make([]float64, n+1)}
	m.a = make([][]float64, n+1)
	for i := range m.a {
		m.a[i] = make([]float64, n+1)
	}
	return m
}

func (m *matrix) clear() {
	for i := range m.a {
		for j := range m.a[i] {
			m.a[i][j] = 0
		}
		m.rhs[i] = 0
	}
}

func (m *matrix) addG(a, b Node, g float64) {
	m.a[a][a] += g
	m.a[b][b] += g
	m.a[a][b] -= g
	m.a[b][a] -= g
}

// addI injects current ieq into node a (out of b).
func (m *matrix) addI(a, b Node, ieq float64) {
	m.rhs[a] += ieq
	m.rhs[b] -= ieq
}

func (m *matrix) stampVSource(branch int, a, b Node, v float64) {
	m.a[branch][a] += 1
	m.a[branch][b] -= 1
	m.a[a][branch] += 1
	m.a[b][branch] -= 1
	m.rhs[branch] += v
}

// solve performs Gaussian elimination with partial pivoting, ignoring the
// ground row/column (index 0).
func (m *matrix) solve() (Solution, error) {
	n := m.n
	// Build the reduced system (indices 1..n).
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n+1)
		copy(a[i], m.a[i+1][1:])
		a[i][n] = m.rhs[i+1]
	}
	// Per-column magnitude of the original system: the singularity test is
	// relative to it, so a well-conditioned circuit whose conductances are
	// uniformly tiny (nano-siemens resistors stamp ~1e-16 entries) is not
	// misclassified as singular by an absolute threshold, while a column
	// whose pivot collapses relative to its own scale still is.
	scale := make([]float64, n)
	for r := 0; r < n; r++ {
		for col := 0; col < n; col++ {
			if v := math.Abs(a[r][col]); v > scale[col] {
				scale[col] = v
			}
		}
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if piv := math.Abs(a[p][col]); scale[col] == 0 || piv < 1e-12*scale[col] {
			return nil, fmt.Errorf("mna: singular matrix at column %d (floating node?)", col+1)
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / piv
			if f == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	x := make(Solution, n+1)
	for r := n - 1; r >= 0; r-- {
		sum := a[r][n]
		for k := r + 1; k < n; k++ {
			sum -= a[r][k] * x[k+1]
		}
		x[r+1] = sum / a[r][r]
	}
	return x, nil
}

// newton iterates the nonlinear system to convergence with a damped update:
// the per-iteration voltage change is limited so that the saturating op-amp
// and diode characteristics cannot make the iteration oscillate across
// their knees. Cancellation is observed between iterations, so no solve can
// hold its goroutine past the caller's deadline by more than one iteration.
func (c *Circuit) newton(ctx context.Context, m *matrix, x0, prev Solution, t, h float64) (Solution, error) {
	x := make(Solution, len(x0))
	copy(x, x0)
	for _, d := range c.devices {
		d.hasLast = false
	}
	const (
		maxChange = 0.5 // volts per Newton step
		tol       = 1e-8
	)
	maxIter := c.MaxNewtonIter
	if maxIter <= 0 {
		maxIter = 300
	}
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mna: solve at t=%g cancelled: %w", t, err)
		}
		c.stamp(m, x, prev, t, h)
		next, err := m.solve()
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for i := 1; i < len(next); i++ {
			if d := math.Abs(next[i] - x[i]); d > worst {
				worst = d
			}
		}
		alpha := 1.0
		if worst > maxChange {
			alpha = maxChange / worst
		}
		for i := 1; i < len(next); i++ {
			x[i] += alpha * (next[i] - x[i])
		}
		if worst < tol {
			return x, nil
		}
	}
	return x, fmt.Errorf("mna: Newton iteration did not converge at t=%g", t)
}

// DC computes the operating point at t=0.
func (c *Circuit) DC() (Solution, error) {
	return c.DCContext(context.Background())
}

// DCContext computes the operating point at t=0 under a context: the Newton
// iteration polls ctx between iterations and returns the context error on
// cancellation (a half-converged operating point is not useful).
func (c *Circuit) DCContext(ctx context.Context) (Solution, error) {
	nb := c.assignBranches()
	m := newMatrix(c.nodes + nb)
	zero := make(Solution, c.nodes+nb+1)
	return c.newton(ctx, m, zero, zero, 0, -1)
}

// Tran holds a transient result.
type Tran struct {
	Time []float64
	// V holds node voltage waveforms indexed by node.
	V map[Node][]float64
	// Truncated marks a run stopped early by cancellation, deadline or
	// Circuit.MaxTranSteps: Time/V hold the samples computed so far.
	Truncated bool
	c         *Circuit
}

// Node returns the waveform of a named node.
func (tr *Tran) Node(name string) []float64 {
	n, ok := tr.c.names[name]
	if !ok {
		return nil
	}
	return tr.V[n]
}

// Transient runs a fixed-step backward-Euler transient analysis.
func (c *Circuit) Transient(tstop, h float64) (*Tran, error) {
	return c.TransientContext(context.Background(), tstop, h)
}

// TransientContext is Transient under a context. The transient is an
// anytime computation: on cancellation or deadline expiry (and when
// Circuit.MaxTranSteps binds) it returns the trace computed so far with
// Tran.Truncated set and a nil error; genuine solve failures still return
// an error.
func (c *Circuit) TransientContext(ctx context.Context, tstop, h float64) (*Tran, error) {
	if tstop <= 0 || h <= 0 {
		return nil, fmt.Errorf("mna: tstop and h must be positive")
	}
	nb := c.assignBranches()
	dim := c.nodes + nb
	m := newMatrix(dim)

	// Initial condition: capacitor ICs enforced via a pseudo-DC with the
	// companion model of a tiny step.
	x := make(Solution, dim+1)
	prev := make(Solution, dim+1)
	for _, d := range c.devices {
		if d.kind == dCapacitor && d.ic != 0 {
			prev[d.a] = d.ic
		}
	}
	x0, err := c.newton(ctx, m, x, prev, 0, h)
	if err != nil {
		return nil, err
	}
	x = x0

	tr := &Tran{V: map[Node][]float64{}, c: c}
	record := func(t float64, s Solution) {
		tr.Time = append(tr.Time, t)
		for i := 1; i <= c.nodes; i++ {
			tr.V[Node(i)] = append(tr.V[Node(i)], s[i])
		}
	}
	record(0, x)
	// Initialize capacitor current memory for the trapezoidal rule.
	for _, d := range c.devices {
		if d.kind == dCapacitor {
			c.prevI[d] = 0
		}
	}
	steps := int(math.Ceil(tstop / h))
	if c.MaxTranSteps > 0 && steps > c.MaxTranSteps {
		steps = c.MaxTranSteps
		tr.Truncated = true
	}
	for s := 1; s <= steps; s++ {
		t := float64(s) * h
		next, err := c.newton(ctx, m, x, x, t, h)
		if err != nil {
			if ctx.Err() != nil {
				// Cancelled mid-solve: the samples up to the previous step
				// stand as the (truncated) result.
				tr.Truncated = true
				return tr, nil
			}
			return nil, err
		}
		if c.method == Trapezoidal {
			for _, d := range c.devices {
				if d.kind != dCapacitor {
					continue
				}
				vprev := x.V(d.a) - x.V(d.b)
				vnew := next.V(d.a) - next.V(d.b)
				c.prevI[d] = 2*d.value/h*(vnew-vprev) - c.prevI[d]
			}
		}
		x = next
		record(t, x)
	}
	return tr, nil
}

// Max returns the maximum of a node waveform.
func (tr *Tran) Max(name string) float64 {
	m := math.Inf(-1)
	for _, v := range tr.Node(name) {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of a node waveform.
func (tr *Tran) Min(name string) float64 {
	m := math.Inf(1)
	for _, v := range tr.Node(name) {
		if v < m {
			m = v
		}
	}
	return m
}

package vhif

import (
	"strconv"
	"strings"

	"vase/internal/diag"
)

// ParseDExpr parses the textual form produced by DExpr.String back into a
// datapath expression tree. Binary operations are always parenthesized in
// that form, which keeps the grammar unambiguous.
func ParseDExpr(s string) (DExpr, error) {
	s = strings.TrimSpace(s)
	e, rest, err := parseDE(s)
	if err != nil {
		return nil, err
	}
	if strings.TrimSpace(rest) != "" {
		return nil, diag.Errorf(diag.CodeVHIFParse, "trailing input %q after expression", rest)
	}
	return e, nil
}

// dexprOps lists the binary operator spellings, longest first so "/=" and
// "<=" win over "/" and "<".
var dexprOps = []string{"nand", "nor", "and", "xor", "or", "/=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/"}

func parseDE(s string) (DExpr, string, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, "", diag.Errorf(diag.CodeVHIFParse, "empty expression")
	case strings.HasPrefix(s, "'0'"):
		return &DConst{Value: 0, Bit: true}, s[3:], nil
	case strings.HasPrefix(s, "'1'"):
		return &DConst{Value: 1, Bit: true}, s[3:], nil
	case strings.HasPrefix(s, "not "):
		x, rest, err := parseDE(s[4:])
		if err != nil {
			return nil, "", err
		}
		return &DUnary{Op: "not", X: x}, rest, nil
	case strings.HasPrefix(s, "abs "):
		x, rest, err := parseDE(s[4:])
		if err != nil {
			return nil, "", err
		}
		return &DUnary{Op: "abs", X: x}, rest, nil
	case strings.HasPrefix(s, "-"):
		x, rest, err := parseDE(s[1:])
		if err != nil {
			return nil, "", err
		}
		return &DUnary{Op: "-", X: x}, rest, nil
	case s[0] == '(':
		return parseDEBinary(s)
	case s[0] >= '0' && s[0] <= '9':
		return parseDENumber(s)
	}
	return parseDEName(s)
}

// parseDEBinary parses "(x op y)".
func parseDEBinary(s string) (DExpr, string, error) {
	depth := 0
	end := -1
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				end = i
			}
		}
		if end >= 0 {
			break
		}
	}
	if end < 0 {
		return nil, "", diag.Errorf(diag.CodeVHIFParse, "unbalanced parentheses in %q", s)
	}
	inner := s[1:end]
	rest := s[end+1:]

	// Find the top-level operator: " op " at depth 0, longest spelling
	// first.
	depth = 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ' ':
			if depth != 0 {
				continue
			}
			for _, op := range dexprOps {
				probe := " " + op + " "
				if strings.HasPrefix(inner[i:], probe) {
					lhs := inner[:i]
					rhs := inner[i+len(probe):]
					x, lrest, err := parseDE(lhs)
					if err != nil {
						return nil, "", err
					}
					if strings.TrimSpace(lrest) != "" {
						continue // the operator was inside the lhs; keep scanning
					}
					y, rrest, err := parseDE(rhs)
					if err != nil {
						return nil, "", err
					}
					if strings.TrimSpace(rrest) != "" {
						continue
					}
					return &DBinary{Op: op, X: x, Y: y}, rest, nil
				}
			}
		}
	}
	// No top-level operator: a parenthesized sub-expression.
	x, lrest, err := parseDE(inner)
	if err != nil {
		return nil, "", err
	}
	if strings.TrimSpace(lrest) != "" {
		return nil, "", diag.Errorf(diag.CodeVHIFParse, "cannot parse %q", s)
	}
	return x, rest, nil
}

func parseDENumber(s string) (DExpr, string, error) {
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.' || s[i] == 'e' ||
		s[i] == 'E' || (i > 0 && (s[i] == '+' || s[i] == '-') && (s[i-1] == 'e' || s[i-1] == 'E'))) {
		i++
	}
	v, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return nil, "", diag.Errorf(diag.CodeVHIFParse, "bad number in %q: %v", s, err)
	}
	return &DConst{Value: v}, s[i:], nil
}

// parseDEName parses a name, an 'above event, an 'event, or a call.
func parseDEName(s string) (DExpr, string, error) {
	i := 0
	for i < len(s) && (isWordByte(s[i]) || s[i] == '.') {
		i++
	}
	if i == 0 {
		return nil, "", diag.Errorf(diag.CodeVHIFParse, "expected a name in %q", s)
	}
	name := s[:i]
	rest := s[i:]
	switch {
	case strings.HasPrefix(rest, "'above("):
		rest = rest[len("'above("):]
		j := strings.IndexByte(rest, ')')
		if j < 0 {
			return nil, "", diag.Errorf(diag.CodeVHIFParse, "unterminated 'above in %q", s)
		}
		th, err := strconv.ParseFloat(rest[:j], 64)
		if err != nil {
			return nil, "", diag.Errorf(diag.CodeVHIFParse, "bad threshold in %q", s)
		}
		return &DEvent{Quantity: name, Threshold: th}, rest[j+1:], nil
	case strings.HasPrefix(rest, "'event"):
		return &DPortEvent{Port: name}, rest[len("'event"):], nil
	case strings.HasPrefix(rest, "("):
		call := &DCall{Fun: name}
		rest = rest[1:]
		for {
			rest = strings.TrimSpace(rest)
			if strings.HasPrefix(rest, ")") {
				return call, rest[1:], nil
			}
			arg, r, err := parseDE(rest)
			if err != nil {
				return nil, "", err
			}
			call.Args = append(call.Args, arg)
			rest = strings.TrimSpace(r)
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, ")") {
				return call, rest[1:], nil
			}
			return nil, "", diag.Errorf(diag.CodeVHIFParse, "malformed call arguments in %q", s)
		}
	}
	return &DName{Name: name}, rest, nil
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

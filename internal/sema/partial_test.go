// Sema-over-partial-trees corpus test: every generated spec, truncated at
// each statement boundary, must still analyze — the recovering parser
// produces a structurally complete tree, sema marks every resulting design
// Partial, and the combined diagnostic stream contains no cascading
// duplicates (the same finding reported twice for one hole).
package sema_test

import (
	"fmt"
	"testing"

	"vase/internal/diag"
	"vase/internal/gen"
	"vase/internal/lexer"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/source"
	"vase/internal/token"
)

// truncationPoints returns the byte offsets just after every semicolon —
// the statement boundaries of src.
func truncationPoints(name, src string) []int {
	var errs diag.List
	toks := lexer.ScanAll(source.NewFile(name, src), &errs)
	var cuts []int
	for _, tok := range toks {
		if tok.Kind == token.SEMICOLON {
			cuts = append(cuts, int(tok.Span.End))
		}
	}
	return cuts
}

func TestAnalyzePartialTruncatedSpecs(t *testing.T) {
	specs := 0
	truncations := 0
	for i := 0; i < 12; i++ {
		spec := gen.Generate(1, i, gen.MixedSize(i))
		specs++
		name := fmt.Sprintf("%s.vhd", spec.Name)
		for _, cut := range truncationPoints(name, spec.Source) {
			truncations++
			mutated := spec.Source[:cut]
			label := fmt.Sprintf("%s@%d", name, cut)

			df, errs := parser.ParseCollect(name, mutated)
			if df == nil {
				t.Fatalf("%s: ParseCollect returned nil", label)
			}
			designs, semaErrs := sema.AnalyzeCollect(df)

			// Truncation mid-file damages the tree; every design analyzed
			// from it must carry the Partial mark so downstream stages
			// refuse to synthesize it.
			recovered := len(*errs) > 0 || df.Recovered
			for _, d := range designs {
				if recovered && !d.Partial {
					t.Errorf("%s: design %q not marked Partial after truncation", label, d.Name)
				}
			}

			// No cascading duplicates: one hole must not produce the same
			// (code, position, message) finding twice.
			seen := map[string]bool{}
			for _, lists := range []*diag.List{errs, semaErrs} {
				for _, d := range *lists {
					key := fmt.Sprintf("%s|%s:%d:%d|%s", d.Code, d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Msg)
					if seen[key] {
						t.Errorf("%s: duplicate diagnostic %s", label, d.Error())
					}
					seen[key] = true
				}
			}
		}
	}
	if specs == 0 || truncations == 0 {
		t.Fatalf("corpus empty: %d specs, %d truncations", specs, truncations)
	}
	t.Logf("analyzed %d truncations across %d generated specs", truncations, specs)
}

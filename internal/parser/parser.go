// Package parser implements a recursive-descent parser for VASS, the
// VHDL-AMS subset for behavioral synthesis of analog systems.
//
// The grammar covers the constructs admitted by the DATE'99 paper: entity
// declarations with annotated quantity/signal/terminal ports, architecture
// bodies, packages, simple simultaneous statements ("lhs == rhs"),
// simultaneous if/use and case/use statements, procedural statements, and
// restricted process statements. Synthesis annotations ("is voltage",
// "is limited at 1.5", "is drives 270.0 at 0.285 peak") are parsed into
// structured ast.Annotation values. Numeric literals accept engineering unit
// suffixes (mV, kohm, ...) which the parser folds into the value.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/lexer"
	"vase/internal/source"
	"vase/internal/token"
)

// Parse scans and parses the given source text registered under name.
// It always returns the (possibly partial) design file; the error, when
// non-nil, is a diag.List of structured syntax diagnostics.
func Parse(name, text string) (*ast.DesignFile, error) {
	df, errs := ParseCollect(name, text)
	return df, errs.Err()
}

// ParseCollect is Parse returning the raw diagnostic list, for tools (the
// linter, the recovery pipeline) that keep going after syntax errors. The
// returned tree is always structurally complete — every input token is
// covered by some top-level unit span, with ERROR nodes standing in for
// skipped regions — and marks itself Recovered when any syntax or lex error
// fired, so sema can flag the resulting designs Partial.
func ParseCollect(name, text string) (*ast.DesignFile, *diag.List) {
	var errs diag.List
	file := source.NewFile(name, text)
	toks := lexer.ScanAll(file, &errs)
	p := &parser{file: file, toks: toks, errs: diag.NewReporter(file, &errs, diag.CodeSyntax)}
	df := p.parseFile()
	df.Recovered = errs.HasErrors()
	return df, &errs
}

type parser struct {
	file *source.File
	toks []lexer.Token
	pos  int
	errs *diag.Reporter
	// seen suppresses exact-duplicate errors: recovery at EOF can make
	// every unclosed construct demand the same token at the same offset,
	// and one finding per (position, message) is enough.
	seen map[string]bool
}

func (p *parser) tok() lexer.Token     { return p.toks[p.pos] }
func (p *parser) kind() token.Kind     { return p.toks[p.pos].Kind }
func (p *parser) at(k token.Kind) bool { return p.kind() == k }

func (p *parser) peekKind(n int) token.Kind {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n].Kind
	}
	return token.EOF
}

func (p *parser) next() lexer.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(sp source.Span, format string, args ...any) {
	if p.repeated(sp, format, args...) {
		return
	}
	p.errs.Errorf(sp, format, args...)
}

// report emits a diagnostic with an explicit code, returning it so call
// sites can attach fixes. A suppressed repeat returns a detached diagnostic
// that never joins the list, so chained WithFix calls stay harmless.
func (p *parser) report(code diag.Code, sp source.Span, format string, args ...any) *diag.Diagnostic {
	if p.repeated(sp, format, args...) {
		return diag.New(code, p.errs.Position(sp.Start), format, args...)
	}
	return p.errs.Report(code, sp, format, args...)
}

// repeated records an error's (offset, message) identity and reports
// whether an identical one was already emitted.
func (p *parser) repeated(sp source.Span, format string, args ...any) bool {
	key := fmt.Sprintf("%d:%s", sp.Start, fmt.Sprintf(format, args...))
	if p.seen == nil {
		p.seen = make(map[string]bool)
	}
	if p.seen[key] {
		return true
	}
	p.seen[key] = true
	return false
}

// outOfSubsetSeq explains VHDL-AMS sequential statements that VASS excludes,
// keyed by their leading word. The explanations replace bare syntax errors
// (the "subset conformance" part of the paper's restrictions).
var outOfSubsetSeq = map[string]string{
	"assert": "assertions have no analog synthesis semantics; express operating conditions as 'range annotations on ports",
	"report": "report statements have no analog synthesis semantics; remove them from the synthesizable model",
	"next":   "loop control is outside VASS: loops must be statically bounded so they unroll to pure dataflow",
	"exit":   "loop control is outside VASS: loops must be statically bounded so they unroll to pure dataflow",
	"loop":   "bare loops are outside VASS: only statically-bounded for-loops and sampled while-loops are synthesizable",
}

// outOfSubsetConc explains excluded concurrent statements.
var outOfSubsetConc = map[string]string{
	"assert":    "concurrent assertions have no analog synthesis semantics; express operating conditions as 'range annotations",
	"block":     "block statements are outside VASS: an architecture body is a flat set of simultaneous, procedural and process statements",
	"component": "component instantiation is outside VASS: behavioral synthesis starts from a single behavioral architecture, not a structural one",
	"generate":  "generate statements are outside VASS: replication must be written as statically-bounded for-loops inside procedurals",
	"with":      "selected signal assignment is outside VASS: use a simultaneous case/use statement instead",
	"break":     "break statements are outside VASS: discontinuities are modeled through process-controlled switch and sample-hold structures",
}

// expect consumes a token of kind k, reporting an error (without consuming)
// when the current token differs.
func (p *parser) expect(k token.Kind) lexer.Token {
	if p.at(k) {
		return p.next()
	}
	t := p.tok()
	p.errorf(t.Span, "expected %s, found %s %q", k, t.Kind, t.Text)
	return lexer.Token{Kind: k, Span: t.Span}
}

// accept consumes a token of kind k when present and reports whether it did.
func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until one of the kinds in stop (or EOF) is current.
func (p *parser) sync(stop ...token.Kind) {
	for !p.at(token.EOF) {
		for _, k := range stop {
			if p.at(k) {
				return
			}
		}
		p.next()
	}
}

// atAny reports whether the current token is any of the given kinds.
func (p *parser) atAny(kinds ...token.Kind) bool {
	for _, k := range kinds {
		if p.at(k) {
			return true
		}
	}
	return false
}

// skipTo is the recovery form of sync: it consumes tokens until one of the
// kinds in stop (or EOF) is current and returns the span of everything it
// consumed, so the caller can wrap the skipped region in an ERROR node.
// When the current token is already a stop kind nothing is consumed and the
// returned span is empty (start == end at the current position).
func (p *parser) skipTo(stop ...token.Kind) source.Span {
	start := p.tok().Span.Start
	end := start
	for !p.at(token.EOF) && !p.atAny(stop...) {
		end = p.next().Span.End
	}
	return source.NewSpan(start, end)
}

// lastEnd is the end position of the most recently consumed token (the start
// of the first token when nothing has been consumed yet).
func (p *parser) lastEnd() source.Pos {
	if p.pos == 0 {
		return p.toks[0].Span.Start
	}
	return p.toks[p.pos-1].Span.End
}

func (p *parser) ident() *ast.Ident {
	t := p.expect(token.IDENT)
	return &ast.Ident{SpanV: t.Span, Name: t.Text, Canon: strings.ToLower(t.Text)}
}

// identLike accepts an identifier or any keyword, treating the keyword as a
// plain name. Used for annotation names where "range" is a keyword.
func (p *parser) identLike() *ast.Ident {
	t := p.tok()
	if t.Kind == token.IDENT || t.Kind.IsKeyword() {
		p.next()
		name := t.Text
		if name == "" {
			name = t.Kind.String()
		}
		return &ast.Ident{SpanV: t.Span, Name: name, Canon: strings.ToLower(name)}
	}
	p.errorf(t.Span, "expected identifier, found %s", t.Kind)
	return &ast.Ident{SpanV: t.Span, Name: "<error>", Canon: "<error>"}
}

// ---------------------------------------------------------------------------
// Design units

func (p *parser) parseFile() *ast.DesignFile {
	df := &ast.DesignFile{File: p.file, SpanV: source.NewSpan(0, source.Pos(p.file.Size()))}
	for !p.at(token.EOF) {
		start := p.tok()
		switch p.kind() {
		case token.ENTITY:
			df.Units = append(df.Units, p.coverUnit(start, p.parseEntity()))
		case token.ARCHITECTURE:
			df.Units = append(df.Units, p.coverUnit(start, p.parseArchitecture()))
		case token.PACKAGE:
			df.Units = append(df.Units, p.coverUnit(start, p.parsePackage()))
		case token.LIBRARY, token.USE:
			// Library/use clauses are accepted and ignored: VASS designs are
			// self-contained once packages in the same file are visible. The
			// clause still leaves a node so the recovered tree covers every
			// input token.
			p.sync(token.SEMICOLON)
			p.accept(token.SEMICOLON)
			df.Units = append(df.Units, &ast.LibClause{SpanV: source.NewSpan(start.Span.Start, p.lastEnd())})
		default:
			t := p.tok()
			p.errorf(t.Span, "expected design unit (entity, architecture, package), found %s %q", t.Kind, t.Text)
			sp := p.skipTo(token.ENTITY, token.ARCHITECTURE, token.PACKAGE, token.LIBRARY, token.USE)
			df.Units = append(df.Units, &ast.ErrorUnit{SpanV: sp})
		}
	}
	return df
}

// coverUnit widens a parsed design unit's span to cover every token the unit
// parser consumed, from the unit's first token to the last token consumed.
// On well-formed input this is the identity (the parser's own span already
// covers exactly those tokens); after a recovery it guarantees the file-level
// tiling invariant that every token is covered by some top-level unit span.
func (p *parser) coverUnit(start lexer.Token, u ast.DesignUnit) ast.DesignUnit {
	cover := source.NewSpan(start.Span.Start, p.lastEnd())
	switch u := u.(type) {
	case *ast.Entity:
		u.SpanV = u.SpanV.Union(cover)
	case *ast.Architecture:
		u.SpanV = u.SpanV.Union(cover)
	case *ast.Package:
		u.SpanV = u.SpanV.Union(cover)
	case *ast.PackageBody:
		u.SpanV = u.SpanV.Union(cover)
	}
	return u
}

func (p *parser) parseEntity() *ast.Entity {
	start := p.expect(token.ENTITY).Span
	e := &ast.Entity{Name: p.ident()}
	p.expect(token.IS)
	if p.at(token.GENERIC) {
		p.next()
		p.expect(token.LPAREN)
		e.Generics = p.parseInterfaceList(ast.ClassConstant)
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
	}
	if p.at(token.PORT) {
		p.next()
		p.expect(token.LPAREN)
		e.Ports = p.parseInterfaceList(ast.ClassQuantity)
		p.expect(token.RPAREN)
		p.expect(token.SEMICOLON)
	}
	end := p.parseEndClause(token.ENTITY, e.Name.Canon)
	e.SpanV = source.NewSpan(start.Start, end)
	return e
}

// parseEndClause consumes "end [kw [body]] [name];" and returns the end
// position.
func (p *parser) parseEndClause(kw token.Kind, name string) source.Pos {
	p.expect(token.END)
	if p.accept(kw) && kw == token.PACKAGE {
		p.accept(token.BODY)
	}
	if p.at(token.IDENT) {
		id := p.ident()
		if name != "" && id.Canon != name {
			p.errorf(id.SpanV, "end name %q does not match %q", id.Name, name)
		}
	}
	t := p.expect(token.SEMICOLON)
	return t.Span.End
}

// parseInterfaceList parses semicolon-separated interface declarations.
func (p *parser) parseInterfaceList(defaultClass ast.ObjectClass) []*ast.ObjectDecl {
	var out []*ast.ObjectDecl
	for {
		d := p.parseInterfaceDecl(defaultClass)
		if d != nil {
			out = append(out, d)
		}
		if !p.accept(token.SEMICOLON) {
			return out
		}
		if p.at(token.RPAREN) { // tolerate trailing semicolon
			return out
		}
	}
}

func (p *parser) parseInterfaceDecl(defaultClass ast.ObjectClass) *ast.ObjectDecl {
	d := &ast.ObjectDecl{Class: defaultClass}
	start := p.tok().Span
	switch p.kind() {
	case token.QUANTITY:
		p.next()
		d.Class = ast.ClassQuantity
	case token.SIGNAL:
		p.next()
		d.Class = ast.ClassSignal
	case token.TERMINAL:
		p.next()
		d.Class = ast.ClassTerminal
	case token.CONSTANT:
		p.next()
		d.Class = ast.ClassConstant
	}
	d.Names = append(d.Names, p.ident())
	for p.accept(token.COMMA) {
		d.Names = append(d.Names, p.ident())
	}
	p.expect(token.COLON)
	switch p.kind() {
	case token.IN:
		p.next()
		d.Mode = ast.ModeIn
	case token.OUT:
		p.next()
		d.Mode = ast.ModeOut
	default:
		// "inout" is not a VASS keyword; accept it so the subset linter can
		// explain why bidirectional ports cannot be synthesized.
		if p.atContextual("inout") {
			p.next()
			d.Mode = ast.ModeInOut
		}
	}
	d.Type = p.parseTypeRef()
	if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	d.Annotations = p.parseAnnotations()
	end := p.toks[p.pos-1].Span.End
	d.SpanV = source.NewSpan(start.Start, end)
	return d
}

func (p *parser) parsePackage() ast.DesignUnit {
	start := p.expect(token.PACKAGE).Span
	if p.accept(token.BODY) {
		pb := &ast.PackageBody{Name: p.ident()}
		p.expect(token.IS)
		pb.Decls = p.parseDecls()
		end := p.parseEndClause(token.PACKAGE, pb.Name.Canon)
		pb.SpanV = source.NewSpan(start.Start, end)
		return pb
	}
	pk := &ast.Package{Name: p.ident()}
	p.expect(token.IS)
	pk.Decls = p.parseDecls()
	end := p.parseEndClause(token.PACKAGE, pk.Name.Canon)
	pk.SpanV = source.NewSpan(start.Start, end)
	return pk
}

func (p *parser) parseArchitecture() *ast.Architecture {
	start := p.expect(token.ARCHITECTURE).Span
	a := &ast.Architecture{Name: p.ident()}
	p.expect(token.OF)
	a.Entity = p.ident()
	p.expect(token.IS)
	a.Decls = p.parseDecls()
	p.expect(token.BEGIN)
	for !p.at(token.END) && !p.at(token.EOF) {
		s := p.parseConcStmt()
		if s == nil {
			break
		}
		a.Stmts = append(a.Stmts, s)
	}
	end := p.parseEndClause(token.ARCHITECTURE, a.Name.Canon)
	a.SpanV = source.NewSpan(start.Start, end)
	return a
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseDecls() []ast.Decl {
	var out []ast.Decl
	for {
		switch p.kind() {
		case token.QUANTITY, token.SIGNAL, token.TERMINAL, token.CONSTANT, token.VARIABLE:
			out = append(out, p.parseObjectDecl())
		case token.FUNCTION:
			out = append(out, p.parseFunctionDecl())
		default:
			return out
		}
	}
}

func (p *parser) parseObjectDecl() ast.Decl {
	start := p.tok().Span
	d := &ast.ObjectDecl{}
	switch p.next().Kind {
	case token.QUANTITY:
		d.Class = ast.ClassQuantity
	case token.SIGNAL:
		d.Class = ast.ClassSignal
	case token.TERMINAL:
		d.Class = ast.ClassTerminal
	case token.CONSTANT:
		d.Class = ast.ClassConstant
	case token.VARIABLE:
		d.Class = ast.ClassVariable
	}
	d.Names = append(d.Names, p.ident())
	for p.accept(token.COMMA) {
		d.Names = append(d.Names, p.ident())
	}
	p.expect(token.COLON)
	d.Type = p.parseTypeRef()
	if p.accept(token.ASSIGN) {
		d.Init = p.parseExpr()
	}
	d.Annotations = p.parseAnnotations()
	if !p.at(token.SEMICOLON) {
		// Recover to the next declaration, the begin/end of the enclosing
		// construct, or the terminating semicolon; keep the partial
		// declaration so its names still resolve.
		t := p.tok()
		p.errorf(t.Span, "expected %s, found %s %q", token.SEMICOLON, t.Kind, t.Text)
		p.skipTo(token.SEMICOLON, token.BEGIN, token.END, token.QUANTITY,
			token.SIGNAL, token.TERMINAL, token.CONSTANT, token.VARIABLE, token.FUNCTION)
		p.accept(token.SEMICOLON)
		d.SpanV = source.NewSpan(start.Start, p.lastEnd())
		return &ast.ErrorDecl{SpanV: d.SpanV, Parts: []ast.Node{d}}
	}
	end := p.next().Span.End
	d.SpanV = source.NewSpan(start.Start, end)
	return d
}

func (p *parser) parseFunctionDecl() *ast.FunctionDecl {
	start := p.expect(token.FUNCTION).Span
	f := &ast.FunctionDecl{Name: p.ident()}
	if p.accept(token.LPAREN) {
		f.Params = p.parseInterfaceList(ast.ClassConstant)
		p.expect(token.RPAREN)
	}
	p.expect(token.RETURN)
	f.Result = p.parseTypeRef()
	if p.accept(token.SEMICOLON) {
		// Declaration only (package header); no body.
		f.SpanV = source.NewSpan(start.Start, f.Result.SpanV.End)
		return f
	}
	p.expect(token.IS)
	f.Decls = p.parseDecls()
	p.expect(token.BEGIN)
	f.Body = p.parseSeqStmts()
	end := p.parseEndClause(token.FUNCTION, f.Name.Canon)
	f.SpanV = source.NewSpan(start.Start, end)
	return f
}

func (p *parser) parseTypeRef() *ast.TypeRef {
	id := p.ident()
	t := &ast.TypeRef{SpanV: id.SpanV, Name: id}
	if p.at(token.LPAREN) {
		p.next()
		lo := p.parseExpr()
		down := false
		switch p.kind() {
		case token.TO:
			p.next()
		case token.DOWNTO:
			p.next()
			down = true
		default:
			p.errorf(p.tok().Span, "expected to or downto in type constraint")
		}
		hi := p.parseExpr()
		end := p.expect(token.RPAREN).Span.End
		t.Constraint = &ast.RangeExpr{SpanV: source.NewSpan(id.SpanV.Start, end), Lo: lo, Hi: hi, Down: down}
		t.SpanV = source.NewSpan(id.SpanV.Start, end)
	}
	return t
}

// ---------------------------------------------------------------------------
// Annotations
//
//	annotations ::= { IS annot }
//	annot       ::= "voltage" | "current"
//	              | "limited" [ "at" expr ]
//	              | "drives" expr "at" expr [ "peak" ]
//	              | "frequency" expr "to" expr
//	              | "impedance" expr
//	              | "range" expr "to" expr
//	              | ident { expr }           (open-ended)
func (p *parser) parseAnnotations() []*ast.Annotation {
	var out []*ast.Annotation
	for p.at(token.IS) {
		p.next()
		for {
			a := p.parseAnnotation()
			if a == nil {
				break
			}
			out = append(out, a)
			// Further bare annotation names may follow without "is"
			// ("is voltage limited"). Stop at tokens that cannot begin an
			// annotation.
			if !p.at(token.IDENT) && !p.at(token.RANGE) {
				break
			}
		}
	}
	return out
}

func (p *parser) parseAnnotation() *ast.Annotation {
	if !p.at(token.IDENT) && !p.at(token.RANGE) {
		p.errorf(p.tok().Span, "expected annotation name after 'is'")
		return nil
	}
	name := p.identLike()
	a := &ast.Annotation{SpanV: name.SpanV, Name: name.Canon}
	switch name.Canon {
	case "voltage", "current":
		// kind annotations take no arguments
	case "limited":
		if p.atContextual("at") {
			p.next()
			a.Args = append(a.Args, p.parseExpr())
		}
	case "drives":
		a.Args = append(a.Args, p.parseExpr())
		if p.atContextual("at") {
			p.next()
			a.Args = append(a.Args, p.parseExpr())
		}
		if p.atContextual("peak") {
			p.next()
		}
	case "frequency", "range":
		a.Args = append(a.Args, p.parseExpr())
		p.expect(token.TO)
		a.Args = append(a.Args, p.parseExpr())
	case "impedance":
		a.Args = append(a.Args, p.parseExpr())
	default:
		// Open-ended: no arguments.
	}
	if len(a.Args) > 0 {
		a.SpanV = a.SpanV.Union(a.Args[len(a.Args)-1].Span())
	}
	return a
}

// atContextual reports whether the current token is the identifier word.
func (p *parser) atContextual(word string) bool {
	return p.at(token.IDENT) && strings.ToLower(p.tok().Text) == word
}

// ---------------------------------------------------------------------------
// Concurrent statements

func (p *parser) parseConcStmt() ast.ConcStmt {
	label := ""
	labelSpan := source.NewSpan(source.NoPos, source.NoPos)
	if p.at(token.IDENT) && p.peekKind(1) == token.COLON {
		// A label only when followed by a statement keyword or an expression
		// that leads to '=='; declarations cannot appear here.
		id := p.ident()
		p.expect(token.COLON)
		label = id.Canon
		labelSpan = id.SpanV
	}
	switch p.kind() {
	case token.IF:
		s := p.parseSimIf()
		s.Label = label
		return s
	case token.CASE:
		s := p.parseSimCase()
		s.Label = label
		return s
	case token.PROCEDURAL:
		s := p.parseProcedural()
		s.Label = label
		return s
	case token.PROCESS:
		s := p.parseProcess()
		s.Label = label
		return s
	case token.EOF, token.END:
		return nil
	case token.FOR, token.WHILE:
		t := p.tok()
		p.report(diag.CodeOutsideSubset, t.Span,
			"%s loops are sequential statements; at architecture level VASS admits only simultaneous, procedural and process statements", t.Kind).
			WithFix("move the loop inside a procedural body")
		p.sync(token.SEMICOLON)
		p.accept(token.SEMICOLON)
		return p.parseConcStmt()
	}
	if p.at(token.IDENT) && p.peekKind(1) != token.EQEQ {
		if why, ok := outOfSubsetConc[strings.ToLower(p.tok().Text)]; ok {
			t := p.tok()
			p.report(diag.CodeOutsideSubset, t.Span, "%q is outside the VASS synthesis subset: %s", strings.ToLower(t.Text), why)
			p.sync(token.SEMICOLON)
			p.accept(token.SEMICOLON)
			return p.parseConcStmt()
		}
	}
	// Simple simultaneous statement: expr == expr ;
	start := p.tok().Span
	if labelSpan.IsValid() {
		start = labelSpan
	}
	lhs := p.parseExpr()
	if !p.at(token.EQEQ) {
		t := p.tok()
		p.errorf(t.Span, "expected %s, found %s %q", token.EQEQ, t.Kind, t.Text)
		p.skipTo(token.SEMICOLON, token.END, token.ELSIF, token.ELSE, token.WHEN)
		p.accept(token.SEMICOLON)
		return &ast.ErrorConc{
			SpanV: source.NewSpan(start.Start, p.lastEnd()),
			Parts: []ast.Node{lhs},
		}
	}
	p.next()
	rhs := p.parseExpr()
	end := p.expect(token.SEMICOLON).Span.End
	return &ast.SimpleSimultaneous{
		SpanV: source.NewSpan(start.Start, end),
		Label: label,
		LHS:   lhs,
		RHS:   rhs,
	}
}

func (p *parser) parseConcStmts(stop ...token.Kind) []ast.ConcStmt {
	var out []ast.ConcStmt
	for {
		if p.at(token.EOF) {
			return out
		}
		for _, k := range stop {
			if p.at(k) {
				return out
			}
		}
		s := p.parseConcStmt()
		if s == nil {
			return out
		}
		out = append(out, s)
	}
}

func (p *parser) parseSimIf() *ast.SimultaneousIf {
	start := p.expect(token.IF).Span
	s := &ast.SimultaneousIf{Cond: p.parseExpr()}
	p.expect(token.USE)
	s.Then = p.parseConcStmts(token.ELSIF, token.ELSE, token.END)
	for p.at(token.ELSIF) {
		espan := p.next().Span
		e := &ast.SimElif{Cond: p.parseExpr()}
		p.expect(token.USE)
		e.Then = p.parseConcStmts(token.ELSIF, token.ELSE, token.END)
		e.SpanV = source.NewSpan(espan.Start, p.toks[p.pos-1].Span.End)
		s.Elifs = append(s.Elifs, e)
	}
	if p.accept(token.ELSE) {
		s.Else = p.parseConcStmts(token.END)
	}
	p.expect(token.END)
	p.expect(token.USE)
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

func (p *parser) parseSimCase() *ast.SimultaneousCase {
	start := p.expect(token.CASE).Span
	s := &ast.SimultaneousCase{Expr: p.parseExpr()}
	p.expect(token.USE)
	for p.at(token.WHEN) {
		arm := p.parseCaseArmHeader()
		arm.Conc = p.parseConcStmts(token.WHEN, token.END)
		s.Arms = append(s.Arms, arm)
	}
	p.expect(token.END)
	p.expect(token.CASE)
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

func (p *parser) parseCaseArmHeader() *ast.CaseArm {
	start := p.expect(token.WHEN).Span
	arm := &ast.CaseArm{SpanV: start}
	if p.accept(token.OTHERS) {
		arm.Choices = nil
	} else {
		arm.Choices = append(arm.Choices, p.parseExpr())
		for p.accept(token.BAR) {
			arm.Choices = append(arm.Choices, p.parseExpr())
		}
	}
	p.expect(token.ARROW)
	return arm
}

func (p *parser) parseProcedural() *ast.Procedural {
	start := p.expect(token.PROCEDURAL).Span
	s := &ast.Procedural{}
	p.accept(token.IS)
	s.Decls = p.parseDecls()
	p.expect(token.BEGIN)
	s.Body = p.parseSeqStmts()
	p.expect(token.END)
	p.expect(token.PROCEDURAL)
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

func (p *parser) parseProcess() *ast.Process {
	start := p.expect(token.PROCESS).Span
	s := &ast.Process{}
	if p.accept(token.LPAREN) {
		s.Sensitivity = append(s.Sensitivity, p.parseExpr())
		for p.accept(token.COMMA) {
			s.Sensitivity = append(s.Sensitivity, p.parseExpr())
		}
		p.expect(token.RPAREN)
	}
	p.accept(token.IS)
	s.Decls = p.parseDecls()
	p.expect(token.BEGIN)
	s.Body = p.parseSeqStmts()
	p.expect(token.END)
	p.expect(token.PROCESS)
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

// ---------------------------------------------------------------------------
// Sequential statements

func (p *parser) parseSeqStmts() []ast.SeqStmt {
	var out []ast.SeqStmt
	for {
		switch p.kind() {
		case token.END, token.ELSE, token.ELSIF, token.WHEN, token.EOF:
			return out
		}
		s := p.parseSeqStmt()
		if s == nil {
			return out
		}
		out = append(out, s)
	}
}

func (p *parser) parseSeqStmt() ast.SeqStmt {
	switch p.kind() {
	case token.IF:
		return p.parseIfStmt()
	case token.CASE:
		return p.parseCaseStmt()
	case token.FOR:
		return p.parseForStmt()
	case token.WHILE:
		return p.parseWhileStmt()
	case token.RETURN:
		start := p.next().Span
		s := &ast.ReturnStmt{}
		if !p.at(token.SEMICOLON) {
			s.Value = p.parseExpr()
		}
		end := p.expect(token.SEMICOLON).Span.End
		s.SpanV = source.NewSpan(start.Start, end)
		return s
	case token.WAIT:
		t := p.tok()
		p.report(diag.CodeOutsideSubset, t.Span,
			"wait statements are not allowed in VASS processes: a process resumes on its sensitivity-list events, runs to completion and suspends").
			WithFix("move the waited-for condition into the sensitivity list, e.g. process (q'above(threshold))")
		p.sync(token.SEMICOLON)
		p.accept(token.SEMICOLON)
		return &ast.NullStmt{SpanV: t.Span}
	case token.IDENT:
		if strings.ToLower(p.tok().Text) == "null" && p.peekKind(1) == token.SEMICOLON {
			start := p.next().Span
			end := p.expect(token.SEMICOLON).Span.End
			return &ast.NullStmt{SpanV: source.NewSpan(start.Start, end)}
		}
		if why, ok := outOfSubsetSeq[strings.ToLower(p.tok().Text)]; ok && p.peekKind(1) != token.ASSIGN && p.peekKind(1) != token.LE {
			t := p.tok()
			p.report(diag.CodeOutsideSubset, t.Span, "%q is outside the VASS synthesis subset: %s", strings.ToLower(t.Text), why)
			p.sync(token.SEMICOLON, token.END)
			p.accept(token.SEMICOLON)
			return &ast.NullStmt{SpanV: t.Span}
		}
		return p.parseAssign()
	}
	t := p.tok()
	p.errorf(t.Span, "expected sequential statement, found %s %q", t.Kind, t.Text)
	p.skipTo(token.SEMICOLON, token.END)
	p.accept(token.SEMICOLON)
	return &ast.ErrorStmt{SpanV: source.NewSpan(t.Span.Start, p.lastEnd())}
}

func (p *parser) parseAssign() ast.SeqStmt {
	start := p.tok().Span
	lhs := p.parsePrimary()
	s := &ast.Assign{LHS: lhs}
	switch p.kind() {
	case token.ASSIGN:
		p.next()
	case token.LE:
		p.next()
		s.SignalOp = true
	default:
		t := p.tok()
		p.errorf(t.Span, "expected := or <= in assignment, found %s %q", t.Kind, t.Text)
		p.skipTo(token.SEMICOLON, token.END)
		p.accept(token.SEMICOLON)
		return &ast.ErrorStmt{SpanV: source.NewSpan(start.Start, p.lastEnd()), Parts: []ast.Node{lhs}}
	}
	s.RHS = p.parseExpr()
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

func (p *parser) parseIfStmt() *ast.IfStmt {
	start := p.expect(token.IF).Span
	s := &ast.IfStmt{Cond: p.parseExpr()}
	p.expect(token.THEN)
	s.Then = p.parseSeqStmts()
	for p.at(token.ELSIF) {
		espan := p.next().Span
		e := &ast.SeqElif{Cond: p.parseExpr()}
		p.expect(token.THEN)
		e.Then = p.parseSeqStmts()
		e.SpanV = source.NewSpan(espan.Start, p.toks[p.pos-1].Span.End)
		s.Elifs = append(s.Elifs, e)
	}
	if p.accept(token.ELSE) {
		s.Else = p.parseSeqStmts()
	}
	p.expect(token.END)
	p.expect(token.IF)
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

func (p *parser) parseCaseStmt() *ast.CaseStmt {
	start := p.expect(token.CASE).Span
	s := &ast.CaseStmt{Expr: p.parseExpr()}
	p.expect(token.IS)
	for p.at(token.WHEN) {
		arm := p.parseCaseArmHeader()
		arm.Seq = p.parseSeqStmts()
		s.Arms = append(s.Arms, arm)
	}
	p.expect(token.END)
	p.expect(token.CASE)
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

func (p *parser) parseForStmt() *ast.ForStmt {
	start := p.expect(token.FOR).Span
	s := &ast.ForStmt{Var: p.ident()}
	p.expect(token.IN)
	lo := p.parseExpr()
	down := false
	switch p.kind() {
	case token.TO:
		p.next()
	case token.DOWNTO:
		p.next()
		down = true
	default:
		p.errorf(p.tok().Span, "expected to or downto in for range")
	}
	hi := p.parseExpr()
	s.Range = &ast.RangeExpr{SpanV: source.NewSpan(lo.Span().Start, hi.Span().End), Lo: lo, Hi: hi, Down: down}
	p.expect(token.LOOP)
	s.Body = p.parseSeqStmts()
	p.expect(token.END)
	p.expect(token.LOOP)
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

func (p *parser) parseWhileStmt() *ast.WhileStmt {
	start := p.expect(token.WHILE).Span
	s := &ast.WhileStmt{Cond: p.parseExpr()}
	p.expect(token.LOOP)
	s.Body = p.parseSeqStmts()
	p.expect(token.END)
	p.expect(token.LOOP)
	end := p.expect(token.SEMICOLON).Span.End
	s.SpanV = source.NewSpan(start.Start, end)
	return s
}

// ---------------------------------------------------------------------------
// Expressions

func (p *parser) parseExpr() ast.Expr {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) ast.Expr {
	x := p.parseUnary()
	for {
		op := p.kind()
		prec := op.Precedence()
		if prec < minPrec {
			return x
		}
		t := p.next()
		y := p.parseBinary(prec + 1)
		x = &ast.Binary{
			SpanV: x.Span().Union(y.Span()),
			Op:    t.Kind,
			X:     x,
			Y:     y,
		}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.kind() {
	case token.MINUS, token.PLUS, token.NOT, token.ABS:
		t := p.next()
		x := p.parseUnary()
		return &ast.Unary{SpanV: t.Span.Union(x.Span()), Op: t.Kind, X: x}
	}
	return p.parsePrimary()
}

// unitScale maps engineering unit suffixes to multipliers. The bare letters
// v, a, s, o (ohm) and hz scale by one; prefixed forms scale accordingly.
var unitScale = map[string]float64{
	"v": 1, "kv": 1e3, "mv": 1e-3, "uv": 1e-6,
	"a": 1, "ma": 1e-3, "ua": 1e-6, "na": 1e-9,
	"o": 1, "ohm": 1, "kohm": 1e3, "mohm": 1e6,
	"hz": 1, "khz": 1e3, "mhz": 1e6, "ghz": 1e9,
	"s": 1, "ms": 1e-3, "us": 1e-6, "ns": 1e-9,
	"f": 1, "pf": 1e-12, "nf": 1e-9, "uf": 1e-6,
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.tok()
	switch t.Kind {
	case token.INTLIT:
		p.next()
		v, err := strconv.ParseInt(strings.ReplaceAll(t.Text, "_", ""), 0, 64)
		if err != nil {
			if f, scaled, ok := p.maybeUnit(float64FromInt(t.Text)); ok {
				return p.suffix(&ast.RealLit{SpanV: t.Span, Value: f * scaled})
			}
			p.errorf(t.Span, "invalid integer literal %q", t.Text)
		}
		if f, scale, ok := p.maybeUnit(float64(v)); ok {
			return p.suffix(&ast.RealLit{SpanV: t.Span, Value: f * scale})
		}
		return p.suffix(&ast.IntLit{SpanV: t.Span, Value: v, Text: t.Text})
	case token.REALLIT:
		p.next()
		v, err := strconv.ParseFloat(strings.ReplaceAll(t.Text, "_", ""), 64)
		if err != nil {
			p.errorf(t.Span, "invalid real literal %q", t.Text)
		}
		if f, scale, ok := p.maybeUnit(v); ok {
			return p.suffix(&ast.RealLit{SpanV: t.Span, Value: f * scale})
		}
		return p.suffix(&ast.RealLit{SpanV: t.Span, Value: v, Text: t.Text})
	case token.BITLIT:
		p.next()
		return p.suffix(&ast.BitLit{SpanV: t.Span, Value: t.Text == "1"})
	case token.STRLIT:
		p.next()
		return p.suffix(&ast.StrLit{SpanV: t.Span, Value: t.Text})
	case token.LPAREN:
		p.next()
		x := p.parseExpr()
		end := p.expect(token.RPAREN).Span.End
		return p.suffix(&ast.Paren{SpanV: source.NewSpan(t.Span.Start, end), X: x})
	case token.IDENT:
		id := p.ident()
		if strings.EqualFold(id.Name, "true") || strings.EqualFold(id.Name, "false") {
			return p.suffix(&ast.Name{SpanV: id.SpanV, Ident: id})
		}
		if p.at(token.LPAREN) {
			p.next()
			c := &ast.Call{Fun: id}
			if !p.at(token.RPAREN) {
				c.Args = append(c.Args, p.parseExpr())
				for p.accept(token.COMMA) {
					c.Args = append(c.Args, p.parseExpr())
				}
			}
			end := p.expect(token.RPAREN).Span.End
			c.SpanV = source.NewSpan(id.SpanV.Start, end)
			return p.suffix(c)
		}
		return p.suffix(&ast.Name{SpanV: id.SpanV, Ident: id})
	}
	p.errorf(t.Span, "expected expression, found %s %q", t.Kind, t.Text)
	p.next()
	return &ast.ErrorExpr{SpanV: t.Span}
}

func float64FromInt(s string) float64 {
	f, _ := strconv.ParseFloat(strings.ReplaceAll(s, "_", ""), 64)
	return f
}

// maybeUnit folds a following unit suffix identifier into a numeric value.
func (p *parser) maybeUnit(v float64) (float64, float64, bool) {
	if p.at(token.IDENT) {
		if scale, ok := unitScale[strings.ToLower(p.tok().Text)]; ok {
			p.next()
			return v, scale, true
		}
	}
	return v, 1, false
}

// suffix applies attribute ticks to a parsed primary: x'above(vth), q'dot.
func (p *parser) suffix(x ast.Expr) ast.Expr {
	for p.at(token.TICK) {
		p.next()
		name := p.identLike()
		a := &ast.Attribute{SpanV: x.Span().Union(name.SpanV), X: x, Attr: name.Canon}
		if p.accept(token.LPAREN) {
			if !p.at(token.RPAREN) {
				a.Args = append(a.Args, p.parseExpr())
				for p.accept(token.COMMA) {
					a.Args = append(a.Args, p.parseExpr())
				}
			}
			end := p.expect(token.RPAREN).Span.End
			a.SpanV = source.NewSpan(x.Span().Start, end)
		}
		x = a
	}
	return x
}

// Parallel branch-and-bound: the decision tree is split at its top levels
// into independent subtree tasks, each explored by a worker running the
// unchanged sequential search over its own partial-solution state. The only
// mutable state shared between workers is the incumbent best cost (an
// atomic compare-and-swap) and the global node budget.
//
// Determinism. Tasks are numbered in depth-first order of their decision
// paths, so the sequential search would visit task i's subtree entirely
// before task j's whenever i < j. The reduction picks the minimum-cost task
// result, breaking ties on the lowest task index, and each task internally
// keeps its first (depth-first) strict improvement — together this selects
// exactly the mapping the sequential search returns. Pruning preserves that
// choice because a subtree whose admissible lower bound *equals* the shared
// incumbent is only discarded when the incumbent was produced by a task at
// or before it in depth-first order (see sharedIncumbent.shouldPrune): an
// equal-cost mapping found in a *later* subtree can never suppress the
// canonical optimum, and a *strictly* better incumbent proves the subtree
// holds no improvement at all. The argument needs an admissible bound, so
// the heuristic StrongBound+sharing combination (documented inadmissible in
// Options) disables cross-task incumbent sharing and falls back to
// per-task-local pruning — still deterministic, but allowed to settle on a
// different equal-quality mapping than the sequential heuristic. FirstFit
// runs also skip incumbent sharing (no pruning can occur before a task's
// first completion, after which it stops) and reduce to the completion of
// the lowest-index task, i.e. the sequential first fit.
package mapper

import (
	"sync"
	"sync/atomic"

	"vase/internal/vhif"
)

const (
	// tasksPerWorker oversubscribes the task queue so uneven subtree sizes
	// still keep every worker busy.
	tasksPerWorker = 4
	// maxSplitTasks caps the splitter; replaying deeper prefixes costs more
	// than the residual load-balancing gain.
	maxSplitTasks = 256
)

// incumbentRec is one immutable observation of the best complete mapping:
// its objective cost and the depth-first index of the task that found it.
type incumbentRec struct {
	cost float64
	src  int
}

// sharedIncumbent is the globally shared bound of the parallel search.
type sharedIncumbent struct {
	p atomic.Pointer[incumbentRec]
}

// offer publishes a complete mapping's cost found by task src. The stored
// record is the minimum over (cost, src) lexicographically, so the
// canonical-order tie-break survives concurrent updates.
func (si *sharedIncumbent) offer(cost float64, src int) {
	rec := &incumbentRec{cost: cost, src: src}
	for {
		cur := si.p.Load()
		if cur != nil && (cur.cost < cost || (cur.cost == cost && cur.src <= src)) {
			return
		}
		if si.p.CompareAndSwap(cur, rec) {
			return
		}
	}
}

// shouldPrune reports whether a subtree of task with lower bound lb is dead:
// strictly above the incumbent cost, or equal to it when the incumbent
// belongs to a task at or before this one in depth-first order.
func (si *sharedIncumbent) shouldPrune(lb float64, task int) bool {
	cur := si.p.Load()
	if cur == nil {
		return false
	}
	return lb > cur.cost || (lb == cur.cost && cur.src <= task)
}

// sharedState is the cross-worker coordination block.
type sharedState struct {
	// nodes is the shared node budget (Options.MaxNodes).
	nodes atomic.Int64
	// ffMin is the lowest task index that reached a feasible complete
	// mapping under FirstFit; tasks above it abort.
	ffMin atomic.Int64
	// bound is the shared incumbent, nil when cross-task pruning is
	// disabled (NoBounding, FirstFit, or an inadmissible bound).
	bound *sharedIncumbent
}

func (ss *sharedState) offerFirstFit(task int) {
	for {
		cur := ss.ffMin.Load()
		if int64(task) >= cur {
			return
		}
		if ss.ffMin.CompareAndSwap(cur, int64(task)) {
			return
		}
	}
}

// pathStep is one branching decision of a task's replayable prefix: the
// index into the block's memoized candidate list, and whether the match
// shares an existing component instead of allocating a dedicated one.
type pathStep struct {
	matchIdx int
	share    bool
}

// splitTask is one subtree of the decision tree, identified by the decision
// path from the root to its own root node.
type splitTask struct {
	path []pathStep
	// node is the task's attach point in the traced decision tree (nil
	// when tracing is off). The splitter owns all interior nodes; each
	// worker appends only to its own task's node, so the tree needs no
	// locking.
	node *TreeNode
	// terminal marks states with no further branching (a complete mapping
	// reached within the prefix, or a dead end); they still run as tasks so
	// completions are recorded.
	terminal bool
}

// fork clones the search's read-only tables into a fresh exploration state.
func (s *search) fork() *search {
	return &search{
		m:             s.m,
		opts:          s.opts,
		order:         s.order,
		floorGeneral:  s.floorGeneral,
		floorDecision: s.floorDecision,
		matchTab:      s.matchTab,
		covered:       make(map[*vhif.Block]*alloc, len(s.order)),
		costOf:        s.costOf,
		frozenCost:    true,
		bestArea:      inf,
		blockLB:       s.blockLB,
		remainingLB:   s.remainingLB,
		cancel:        s.cancel,
	}
}

// applyStep replays one prefix decision, reproducing exactly the placement
// run() would have performed on that branch.
func (w *search) applyStep(st pathStep) {
	cur := w.nextUncovered()
	match := w.matchTab[cur][st.matchIdx]
	if st.share {
		w.place(match, w.findShared(match), 0)
		return
	}
	cost, _ := w.matchCost(match)
	a := &alloc{match: match, sig: sigOf(match), area: cost.area, power: cost.power, cost: cost.area}
	if w.opts.Objective == MinimizePower {
		a.cost = cost.power
	}
	w.allocs = append(w.allocs, a)
	w.place(match, a, match.OpAmps)
}

// expandSteps enumerates the branching decisions available at the replayed
// state, in the same order run() tries them (the sequencing rule, sharing
// before dedicated allocation). No bounding is applied: the splitter runs
// before any complete mapping exists, so the incumbent is infinite.
func (w *search) expandSteps() []pathStep {
	cur := w.nextUncovered()
	if cur == nil {
		return nil
	}
	var steps []pathStep
	for i, match := range w.matchTab[cur] {
		if w.conflicts(match) {
			continue
		}
		if _, ok := w.matchCost(match); !ok {
			continue
		}
		if !w.opts.NoSharing && w.findShared(match) != nil {
			steps = append(steps, pathStep{matchIdx: i, share: true})
		}
		steps = append(steps, pathStep{matchIdx: i, share: false})
	}
	return steps
}

// split expands the decision tree breadth-first from the root until at
// least target subtree tasks exist (or the tree has no more branching).
// The returned tasks are in depth-first order of their decision paths:
// level-synchronous expansion replaces each frontier entry by its children
// in branching order, which preserves the lexicographic path order.
func (s *search) split(target int) []*splitTask {
	frontier := []*splitTask{{node: s.root}}
	for grew := true; grew && len(frontier) < target; {
		if s.cancel != nil && s.cancel.Load() {
			// Cancelled while splitting: stop growing; the tasks themselves
			// observe the flag on their first visit.
			break
		}
		grew = false
		next := make([]*splitTask, 0, 2*len(frontier))
		for _, t := range frontier {
			if t.terminal {
				next = append(next, t)
				continue
			}
			w := s.fork()
			for _, st := range t.path {
				w.applyStep(st)
			}
			steps := w.expandSteps()
			if len(steps) == 0 {
				t.terminal = true
				next = append(next, t)
				continue
			}
			s.stats.NodesVisited++ // the expanded interior node
			grew = true
			cur := w.nextUncovered()
			for _, st := range steps {
				child := &splitTask{path: append(append([]pathStep{}, t.path...), st)}
				if t.node != nil {
					match := w.matchTab[cur][st.matchIdx]
					decision, opamps := "alloc "+match.Name, w.opamps+match.OpAmps
					if st.share {
						decision, opamps = "share "+match.Name, w.opamps
					}
					child.node = &TreeNode{Block: match.Root.Name, Decision: decision, OpAmps: opamps}
					t.node.Children = append(t.node.Children, child.node)
				}
				next = append(next, child)
			}
		}
		frontier = next
	}
	return frontier
}

// runTask explores one subtree: replay the prefix on a fresh state, then
// run the sequential search from there under the shared bound and budget.
func (s *search) runTask(t *splitTask, idx int, shared *sharedState) *search {
	w := s.fork()
	w.task = idx
	w.shared = shared
	if w.opts.Trace {
		w.root = &TreeNode{}
		w.cursor = w.root
	}
	for _, st := range t.path {
		w.applyStep(st)
	}
	w.run()
	return w
}

// runParallel is the parallel counterpart of run(): split, fan out over a
// bounded worker pool, and reduce deterministically in task order.
func (s *search) runParallel() {
	workers := s.opts.Workers
	// Precompute every candidate cost in deterministic order so workers
	// share a frozen read-only cache (and the first estimation error, if
	// any, does not depend on scheduling).
	for _, b := range s.order {
		for _, m := range s.matchTab[b] {
			s.matchCost(m)
		}
	}
	target := workers * tasksPerWorker
	if target > maxSplitTasks {
		target = maxSplitTasks
	}
	tasks := s.split(target)
	s.stats.Workers, s.stats.Tasks = workers, len(tasks)
	shared := &sharedState{}
	shared.nodes.Store(int64(s.stats.NodesVisited)) // splitter visits count against the budget
	shared.ffMin.Store(int64(len(tasks)))
	admissible := !s.opts.StrongBound || s.opts.NoSharing
	if !s.opts.NoBounding && !s.opts.FirstFit && admissible {
		shared.bound = &sharedIncumbent{}
	}
	if len(tasks) == 1 {
		// No branching to distribute: run the single subtree in place.
		s.reduce(tasks[0], s.runTask(tasks[0], 0, shared))
		return
	}

	results := make([]*search, len(tasks))
	queue := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range queue {
				results[idx] = s.runTask(tasks[idx], idx, shared)
			}
		}()
	}
	for idx := range tasks {
		queue <- idx
	}
	close(queue)
	wg.Wait()

	for idx, w := range results {
		s.reduce(tasks[idx], w)
	}
}

// reduce folds one task result into the root search, in task order. For the
// exact search the winner is the minimum cost with the lowest task index;
// under FirstFit it is the completion of the lowest-index task.
func (s *search) reduce(t *splitTask, w *search) {
	s.stats.NodesVisited += w.stats.NodesVisited
	s.stats.CompleteMappings += w.stats.CompleteMappings
	s.stats.Pruned += w.stats.Pruned
	s.stats.Infeasible += w.stats.Infeasible
	s.truncated = s.truncated || w.truncated
	if s.err == nil {
		s.err = w.err
	}
	if t.node != nil && w.root != nil {
		t.node.Children = append(t.node.Children, w.root.Children...)
	}
	if w.best == nil {
		return
	}
	if s.opts.FirstFit {
		if s.best == nil {
			s.best, s.bestArea = w.best, w.bestArea
		}
		return
	}
	if w.bestArea < s.bestArea {
		s.best, s.bestArea = w.best, w.bestArea
	}
}

package source

import (
	"strings"
	"testing"
)

// Err must sort by position and drop duplicate messages so that golden
// diagnostic tests are stable regardless of pass emission order.
func TestErrorListDeterministic(t *testing.T) {
	f := NewFile("t.vhd", "line one\nline two\nline three\n")
	var l ErrorList
	l.Add(f.Position(20), "third")
	l.Add(f.Position(0), "first")
	l.Add(f.Position(9), "second")
	l.Add(f.Position(0), "first") // exact duplicate
	l.Add(f.Position(0), "also first, later message")

	err := l.Err()
	if err == nil {
		t.Fatal("Err() = nil for non-empty list")
	}
	if len(l) != 4 {
		t.Fatalf("after dedupe len = %d, want 4", len(l))
	}
	want := []string{"also first, later message", "first", "second", "third"}
	for i, msg := range want {
		if l[i].Msg != msg {
			t.Errorf("l[%d].Msg = %q, want %q", i, l[i].Msg, msg)
		}
	}
	out := err.Error()
	if strings.Count(out, "first") != 2 { // "also first..." and "first"
		t.Errorf("duplicate not removed from rendering:\n%s", out)
	}

	var empty ErrorList
	if err := empty.Err(); err != nil {
		t.Errorf("empty Err() = %v, want nil", err)
	}
}

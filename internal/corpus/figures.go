package corpus

import (
	"fmt"
	"math"
	"strings"

	"vase/internal/compile"
	"vase/internal/mapper"
	"vase/internal/mna"
	"vase/internal/parser"
	"vase/internal/sema"
	"vase/internal/sim"
	"vase/internal/vhif"
)

// Figure3Source is the example of the paper's Figure 3a: a procedural with
// two data-dependent instructions and a process resumed by two 'above
// events whose statements group into states by data dependency.
const Figure3Source = `entity fig3 is
  port (
    quantity a : in real is voltage;
    quantity b : in real is voltage;
    quantity y : out real
  );
end entity;

architecture example of fig3 is
  constant th1 : real := 1.0;
  constant th2 : real := 2.0;
  signal c : bit;
  quantity w : real;
begin
  procedural is
    variable t1 : real;
  begin
    t1 := a + b;
    w := t1 * 2.0;
  end procedural;
  if (c = '1') use y == w; else y == -w; end use;
  process (a'above(th1), b'above(th2)) is
    variable m, n, u : real;
  begin
    m := 1.0;
    n := 2.0;
    u := n + 1.0;
    if (a'above(th1) = true) then c <= '1';
    else c <= '0'; end if;
  end process;
end architecture;
`

// Figure3 compiles the Figure 3 example and renders its VHIF representation
// (the paper's Figure 3b).
func Figure3() (*vhif.Module, string, error) {
	m, err := compileSource("fig3.vhd", Figure3Source)
	if err != nil {
		return nil, "", err
	}
	var b strings.Builder
	b.WriteString("Figure 3 — translation of procedural and process statements into VHIF\n\n")
	b.WriteString(m.Dump())
	b.WriteString("\nState grouping: independent assignments share a state; data-dependent\n")
	b.WriteString("ones start a new state; the if branches via guarded arcs (paper Fig. 3b).\n")
	return m, b.String(), nil
}

// Figure4Source exercises the while-loop translation of the paper's
// Figure 4: a sampling loop halving its accumulator until it drops below a
// threshold.
const Figure4Source = `entity fig4 is
  port (
    quantity a : in real is voltage;
    quantity y : out real
  );
end entity;

architecture example of fig4 is
begin
  procedural is
    variable acc : real;
  begin
    acc := a;
    while acc > 1.0 loop
      acc := acc * 0.5;
    end loop;
    y := acc;
  end procedural;
end architecture;
`

// Figure4 compiles the while-loop example and reports the structural
// elements of the translation: the two condition blocks, S/H1/S/H2 pair and
// the input routing multiplexer.
func Figure4() (*vhif.Module, string, error) {
	m, err := compileSource("fig4.vhd", Figure4Source)
	if err != nil {
		return nil, "", err
	}
	g := m.Graphs[0]
	var b strings.Builder
	b.WriteString("Figure 4 — translation of a while statement\n\n")
	b.WriteString(m.Dump())
	fmt.Fprintf(&b, "\nStructure check: %d condition blocks (icontr + contr), %d sample-and-holds (S/H1 + S/H2), %d input mux\n",
		g.CountKind(vhif.BComparator), g.CountKind(vhif.BSampleHold), g.CountKind(vhif.BMux))
	return m, b.String(), nil
}

// Figure6Module builds the signal-flow graph of the paper's Figure 6a:
// out = k1*a + k2*b, the example whose branch-and-bound decision tree the
// paper draws with complete mappings of different op amp counts.
func Figure6Module() *vhif.Module {
	g := vhif.NewGraph("main")
	a := g.AddBlock(vhif.BInput, "a")
	b := g.AddBlock(vhif.BInput, "b")
	g1 := g.AddBlock(vhif.BGain, "block1", a.Out)
	g1.Param = 15
	g2 := g.AddBlock(vhif.BGain, "block2", b.Out)
	g2.Param = 3
	sum := g.AddBlock(vhif.BAdd, "block3", g1.Out, g2.Out)
	g.AddBlock(vhif.BOutput, "out", sum.Out)
	return &vhif.Module{Name: "fig6", Graphs: []*vhif.Graph{g}}
}

// Figure6Result is the decision-tree experiment outcome.
type Figure6Result struct {
	Result     *mapper.Result
	Complete   []int // op amp counts of every complete mapping (unbounded run)
	BestOpAmps int
}

// Figure6 reproduces the decision-tree exploration: it first enumerates all
// complete mappings without bounding (the full tree of Figure 6a), then
// runs the bounded search and reports the minimum-op-amp mapping.
func Figure6() (*Figure6Result, string, error) {
	// The figure reproduces the paper's sequential exploration (its node
	// counts and tree shape), so pin Workers to 1.
	unbounded := mapper.DefaultOptions()
	unbounded.Workers = 1
	unbounded.NoBounding = true
	unbounded.Trace = true
	full, err := mapper.Synthesize(Figure6Module(), unbounded)
	if err != nil {
		return nil, "", err
	}
	var complete []int
	var walk func(n *mapper.TreeNode)
	walk = func(n *mapper.TreeNode) {
		if n.Complete {
			complete = append(complete, n.OpAmps)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(full.Tree)

	bounded := mapper.DefaultOptions()
	bounded.Workers = 1
	bounded.Trace = true
	res, err := mapper.Synthesize(Figure6Module(), bounded)
	if err != nil {
		return nil, "", err
	}

	var b strings.Builder
	b.WriteString("Figure 6 — architecture synthesis with branch-and-bound\n\n")
	fmt.Fprintf(&b, "signal flow: out = 15*a + 3*b (block1, block2, block3)\n\n")
	fmt.Fprintf(&b, "complete mappings in the full decision tree (op amp counts): %v\n", complete)
	fmt.Fprintf(&b, "bounded search: %d nodes visited, %d pruned, best mapping %d op amp(s)\n",
		res.Stats.NodesVisited, res.Stats.Pruned, res.Netlist.OpAmpCount())
	fmt.Fprintf(&b, "unbounded search: %d nodes visited\n\n", full.Stats.NodesVisited)
	b.WriteString("bounded decision tree:\n")
	b.WriteString(mapper.FormatTree(res.Tree))
	b.WriteString("\nbest netlist:\n")
	b.WriteString(res.Netlist.Dump())
	return &Figure6Result{Result: res, Complete: complete, BestOpAmps: res.Netlist.OpAmpCount()}, b.String(), nil
}

// Figure7 synthesizes the receiver and renders its signal-flow graph and
// circuit structure (the paper's Figures 7a and 7b).
func Figure7() (string, error) {
	b, err := BuildApp(ByKey("receiver"))
	if err != nil {
		return "", err
	}
	var out strings.Builder
	out.WriteString("Figure 7 — synthesis of the receiver module\n\n")
	out.WriteString("(a) VHIF signal-flow graph:\n")
	out.WriteString(b.Module.Dump())
	out.WriteString("\n(b) synthesized circuit structure:\n")
	out.WriteString(b.Result.Netlist.Dump())
	fmt.Fprintf(&out, "\narea estimate: %.0f um^2, %d op amps, %.2f mW\n",
		b.Result.Report.AreaUm2, b.Result.Netlist.OpAmpCount(), b.Result.Report.PowerMW)
	return out.String(), nil
}

// Figure8Result holds the receiver transient experiment.
type Figure8Result struct {
	Time  []float64
	V11   []float64 // input signal (the paper's v(11))
	V5    []float64 // internal amplifier output (v(5))
	V9    []float64 // earph output (v(9))
	ClipP float64   // observed positive clip level
	ClipN float64   // observed negative clip level
}

// SpiceConfig selects the MNA engine for corpus circuit simulations. The
// zero value is the exact planned engine — bit-identical to the reference,
// so the golden figure outputs are engine-independent by construction.
type SpiceConfig struct {
	Solver mna.SolverMode
	Budget mna.ErrorBudget
}

// Figure8 reproduces the receiver simulation: the synthesized netlist is
// elaborated into a 2-stage op-amp macromodel circuit and driven with a
// deliberately high-amplitude 1 kHz input so the signal-limiting capability
// of the output stage is visible. The paper's v(9) clips at 1.5 V.
func Figure8() (*Figure8Result, string, error) {
	return Figure8With(SpiceConfig{})
}

// Figure8With is Figure8 on an explicit solver tier — the benchmark and CI
// entry point for comparing the exact and fast engines on the same circuit.
func Figure8With(cfg SpiceConfig) (*Figure8Result, string, error) {
	b, err := BuildApp(ByKey("receiver"))
	if err != nil {
		return nil, "", err
	}
	lineIn := func(t float64) float64 { return 1.5 * math.Sin(2*math.Pi*1e3*t) }
	el, err := mna.Elaborate(b.Result.Netlist, map[string]mna.Waveform{
		"line":  lineIn,
		"local": func(float64) float64 { return 0 },
	})
	if err != nil {
		return nil, "", err
	}
	el.Circuit.Solver = cfg.Solver
	el.Circuit.Budget = cfg.Budget
	tr, err := el.Circuit.Transient(3e-3, 1e-6)
	if err != nil {
		return nil, "", err
	}
	r := &Figure8Result{Time: tr.Time}
	r.V9 = el.V(tr, "earph")
	r.V11 = el.V(tr, "line")
	// v(5): the internal amplifier output — the summing amplifier's output
	// net in the synthesized netlist.
	for name := range el.NodeOf {
		if strings.Contains(name, "add") && strings.HasSuffix(name, ".out") {
			r.V5 = el.V(tr, name)
			break
		}
	}
	r.ClipP, r.ClipN = math.Inf(-1), math.Inf(1)
	for _, v := range r.V9 {
		r.ClipP = math.Max(r.ClipP, v)
		r.ClipN = math.Min(r.ClipN, v)
	}

	var out strings.Builder
	out.WriteString("Figure 8 — circuit-level simulation of the receiver module\n\n")
	out.WriteString("input: line = 1.5 V peak, 1 kHz (deliberately high amplitude)\n")
	fmt.Fprintf(&out, "observed clipping of v(9)=earph: +%.3f V / %.3f V (paper: +-1.5 V)\n\n", r.ClipP, r.ClipN)
	out.WriteString("t [ms]   v(11)=line   v(9)=earph\n")
	for i := 0; i < len(r.Time); i += 100 {
		fmt.Fprintf(&out, "%6.3f   %+8.4f    %+8.4f\n", r.Time[i]*1e3, r.V11[i], r.V9[i])
	}
	out.WriteString("\nascii waveform of v(9) (clipping visible as flat tops):\n")
	out.WriteString(asciiPlot(r.V9, 64, 16, 1.8))
	return r, out.String(), nil
}

// Figure8Behavioral runs the same experiment on the behavioral simulator.
func Figure8Behavioral() (*sim.Trace, error) {
	b, err := BuildApp(ByKey("receiver"))
	if err != nil {
		return nil, err
	}
	return sim.SimulateModule(b.Module, map[string]sim.Source{
		"line":  sim.Sine(1.5, 1e3, 0),
		"local": sim.DC(0),
	}, sim.Options{TStop: 3e-3, TStep: 1e-6})
}

// asciiPlot renders a waveform as a small character plot.
func asciiPlot(samples []float64, width, height int, fullScale float64) string {
	if len(samples) == 0 {
		return "(no samples)\n"
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		idx := x * (len(samples) - 1) / maxInt(width-1, 1)
		v := samples[idx]
		y := int((1 - (v+fullScale)/(2*fullScale)) * float64(height-1))
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		grid[y][x] = '*'
	}
	var b strings.Builder
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = fmt.Sprintf("%+5.1f ", fullScale)
		case height / 2:
			label = "  0.0 "
		case height - 1:
			label = fmt.Sprintf("%+5.1f ", -fullScale)
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func compileSource(name, text string) (*vhif.Module, error) {
	df, err := parser.Parse(name, text)
	if err != nil {
		return nil, err
	}
	d, err := sema.AnalyzeOne(df)
	if err != nil {
		return nil, err
	}
	return compile.Compile(d)
}

package lsp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"vase/internal/pipeline"
)

// Smoke runs a built-in client scenario against a fresh in-process server
// over in-memory pipes: open a broken document, expect diagnostics; fix it,
// expect the diagnostics to clear; hover a signal, expect a range fact;
// request the outline, expect the design units. It returns nil when every
// step behaved. cmd/vaselsp exposes it as -smoke and CI runs it on every
// push, so a protocol regression fails the build rather than an editor.
func Smoke(ctx context.Context, pipe *pipeline.Pipeline, logf func(string, ...any)) error {
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()

	clientIn, serverOut := io.Pipe()
	serverIn, clientOut := io.Pipe()
	srv := New(serverIn, serverOut, pipe, logf)
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }()
	c := newConn(clientIn, clientOut)

	const uri = "file:///smoke/amp.vhd"
	const broken = `entity amp is
  port (quantity vin : in real is voltage;
        quantity vout : out real is voltage limited at 1.5);
end entity amp;

architecture behav of amp is
begin
  vout == 2.0 * ;
end architecture behav;
`
	const fixed = `entity amp is
  port (quantity vin : in real is voltage;
        quantity vout : out real is voltage limited at 1.5);
end entity amp;

architecture behav of amp is
begin
  vout == 2.0 * vin;
end architecture behav;
`

	var step int
	fail := func(format string, args ...any) error {
		return fmt.Errorf("smoke step %d: %s", step, fmt.Sprintf(format, args...))
	}

	// request sends a request and returns the raw result, skipping (and
	// recording) any publishDiagnostics notifications that arrive first.
	var pending []publishDiagnosticsParams
	request := func(id int, method string, params any) (json.RawMessage, error) {
		raw, err := json.Marshal(params)
		if err != nil {
			return nil, err
		}
		rid := json.RawMessage(fmt.Sprintf("%d", id))
		if err := c.write(&message{ID: &rid, Method: method, Params: raw}); err != nil {
			return nil, err
		}
		for {
			m, err := c.read()
			if err != nil {
				return nil, err
			}
			if m.Method == "textDocument/publishDiagnostics" {
				var p publishDiagnosticsParams
				if err := json.Unmarshal(m.Params, &p); err != nil {
					return nil, err
				}
				pending = append(pending, p)
				continue
			}
			if m.ID == nil {
				continue
			}
			if m.Error != nil {
				return nil, fmt.Errorf("%s: server error %d: %s", method, m.Error.Code, m.Error.Message)
			}
			res, err := json.Marshal(m.Result)
			return res, err
		}
	}
	notify := func(method string, params any) error {
		raw, err := json.Marshal(params)
		if err != nil {
			return err
		}
		return c.write(&message{Method: method, Params: raw})
	}
	// nextDiags returns the next publishDiagnostics for uri.
	nextDiags := func() (publishDiagnosticsParams, error) {
		for {
			if len(pending) > 0 {
				p := pending[0]
				pending = pending[1:]
				if p.URI == uri {
					return p, nil
				}
				continue
			}
			m, err := c.read()
			if err != nil {
				return publishDiagnosticsParams{}, err
			}
			if m.Method != "textDocument/publishDiagnostics" {
				continue
			}
			var p publishDiagnosticsParams
			if err := json.Unmarshal(m.Params, &p); err != nil {
				return publishDiagnosticsParams{}, err
			}
			if p.URI == uri {
				return p, nil
			}
		}
	}

	step = 1 // initialize
	res, err := request(1, "initialize", initializeParams{})
	if err != nil {
		return fail("%v", err)
	}
	var init initializeResult
	if err := json.Unmarshal(res, &init); err != nil {
		return fail("bad initialize result: %v", err)
	}
	if !init.Capabilities.HoverProvider || init.Capabilities.TextDocumentSync != 1 {
		return fail("capabilities = %+v", init.Capabilities)
	}
	if err := notify("initialized", struct{}{}); err != nil {
		return fail("%v", err)
	}

	step = 2 // open broken document, expect diagnostics
	if err := notify("textDocument/didOpen", didOpenParams{
		TextDocument: textDocumentItem{URI: uri, Text: broken},
	}); err != nil {
		return fail("%v", err)
	}
	p, err := nextDiags()
	if err != nil {
		return fail("%v", err)
	}
	if len(p.Diagnostics) == 0 {
		return fail("no diagnostics for broken document")
	}

	step = 3 // fix it, expect the diagnostics to clear
	if err := notify("textDocument/didChange", didChangeParams{
		TextDocument:   textDocumentIdentifier{URI: uri},
		ContentChanges: []contentChangeEvent{{Text: fixed}},
	}); err != nil {
		return fail("%v", err)
	}
	if p, err = nextDiags(); err != nil {
		return fail("%v", err)
	}
	if len(p.Diagnostics) != 0 {
		return fail("diagnostics did not clear: %+v", p.Diagnostics)
	}

	step = 4 // hover vout on the fixed document
	res, err = request(2, "textDocument/hover", hoverParams{
		TextDocument: textDocumentIdentifier{URI: uri},
		Position:     Position{Line: 7, Character: 3}, // "vout" in the assignment
	})
	if err != nil {
		return fail("%v", err)
	}
	var hov hoverResult
	if err := json.Unmarshal(res, &hov); err != nil || hov.Contents.Value == "" {
		return fail("no hover content (result %s)", res)
	}

	step = 5 // document outline
	res, err = request(3, "textDocument/documentSymbol", documentSymbolParams{
		TextDocument: textDocumentIdentifier{URI: uri},
	})
	if err != nil {
		return fail("%v", err)
	}
	var syms []DocumentSymbol
	if err := json.Unmarshal(res, &syms); err != nil {
		return fail("bad documentSymbol result: %v", err)
	}
	if len(syms) != 2 || syms[0].Name != "amp" || syms[1].Name != "behav" {
		return fail("outline = %+v, want [amp behav]", syms)
	}

	step = 6 // orderly shutdown
	if _, err := request(4, "shutdown", struct{}{}); err != nil {
		return fail("%v", err)
	}
	if err := notify("exit", struct{}{}); err != nil {
		return fail("%v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("smoke: server exit: %v", err)
		}
	case <-ctx.Done():
		return fmt.Errorf("smoke: server did not exit: %v", ctx.Err())
	}
	return nil
}

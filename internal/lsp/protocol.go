package lsp

// The subset of LSP 3.17 structures the server speaks. Positions are
// zero-based (line, character); the server counts characters in bytes,
// which matches UTF-16 code units for the ASCII sources VASS works with.

// Position is a zero-based line/character location in a document.
type Position struct {
	Line      int `json:"line"`
	Character int `json:"character"`
}

// Range is a half-open [Start, End) document range.
type Range struct {
	Start Position `json:"start"`
	End   Position `json:"end"`
}

// Diagnostic is one published finding.
type Diagnostic struct {
	Range    Range  `json:"range"`
	Severity int    `json:"severity,omitempty"`
	Code     string `json:"code,omitempty"`
	Source   string `json:"source,omitempty"`
	Message  string `json:"message"`
}

// LSP diagnostic severities.
const (
	severityError   = 1
	severityWarning = 2
	severityInfo    = 3
)

type initializeParams struct {
	RootURI string `json:"rootUri"`
}

type initializeResult struct {
	Capabilities serverCapabilities `json:"capabilities"`
	ServerInfo   serverInfo         `json:"serverInfo"`
}

type serverInfo struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

type serverCapabilities struct {
	// 1 = full-document sync: the client resends the whole text on change.
	TextDocumentSync       int  `json:"textDocumentSync"`
	HoverProvider          bool `json:"hoverProvider"`
	DocumentSymbolProvider bool `json:"documentSymbolProvider"`
}

type textDocumentItem struct {
	URI  string `json:"uri"`
	Text string `json:"text"`
}

type textDocumentIdentifier struct {
	URI string `json:"uri"`
}

type didOpenParams struct {
	TextDocument textDocumentItem `json:"textDocument"`
}

type didChangeParams struct {
	TextDocument   textDocumentIdentifier   `json:"textDocument"`
	ContentChanges []contentChangeEvent     `json:"contentChanges"`
}

type contentChangeEvent struct {
	// Full sync: Text is the complete new document content.
	Text string `json:"text"`
}

type didCloseParams struct {
	TextDocument textDocumentIdentifier `json:"textDocument"`
}

type publishDiagnosticsParams struct {
	URI         string       `json:"uri"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

type hoverParams struct {
	TextDocument textDocumentIdentifier `json:"textDocument"`
	Position     Position               `json:"position"`
}

type hoverResult struct {
	Contents markupContent `json:"contents"`
	Range    *Range        `json:"range,omitempty"`
}

type markupContent struct {
	Kind  string `json:"kind"`
	Value string `json:"value"`
}

type documentSymbolParams struct {
	TextDocument textDocumentIdentifier `json:"textDocument"`
}

// DocumentSymbol is one hierarchical outline entry.
type DocumentSymbol struct {
	Name           string           `json:"name"`
	Detail         string           `json:"detail,omitempty"`
	Kind           int              `json:"kind"`
	Range          Range            `json:"range"`
	SelectionRange Range            `json:"selectionRange"`
	Children       []DocumentSymbol `json:"children,omitempty"`
}

// LSP symbol kinds the server uses.
const (
	symbolKindModule    = 2  // package
	symbolKindClass     = 5  // entity
	symbolKindInterface = 11 // architecture
	symbolKindFunction  = 12
	symbolKindVariable  = 13
	symbolKindConstant  = 14
)

package lint

import (
	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
	"vase/internal/token"
)

// dimensionPass checks physical-kind consistency of simultaneous equations:
// adding, subtracting or equating a voltage-kind quantity with a
// current-kind quantity is dimensionally inconsistent (the "is voltage" /
// "is current" annotations give quantities their physical facet).
// Multiplication and division legitimately change dimension, so the check
// tracks only sums, differences and the two equation sides; a derivative or
// any arithmetic product resets the inferred kind to unspecified.
var dimensionPass = &Pass{
	Name: "dimension",
	Doc:  "voltage/current consistency of simultaneous statements",
	Run:  runDimension,
}

func runDimension(u *Unit) {
	d := u.Design
	if d == nil {
		return
	}
	var kindOf func(e ast.Expr) sema.SignalKind
	kindOf = func(e ast.Expr) sema.SignalKind {
		switch e := e.(type) {
		case *ast.Name:
			if sym := d.Lookup(e.Ident.Canon); sym != nil && sym.Kind == sema.SymQuantity {
				return sym.Attr.Kind
			}
		case *ast.Paren:
			return kindOf(e.X)
		case *ast.Unary:
			if e.Op == token.PLUS || e.Op == token.MINUS {
				return kindOf(e.X)
			}
		case *ast.Binary:
			switch e.Op {
			case token.PLUS, token.MINUS:
				x, y := kindOf(e.X), kindOf(e.Y)
				if x != sema.KindUnspecified && y != sema.KindUnspecified && x != y {
					u.Report(diag.CodeDimension, e.SpanV,
						"expression mixes %s and %s quantities in a sum", x, y).
						WithFix("convert one side explicitly (multiply by an impedance or admittance constant)")
					return sema.KindUnspecified
				}
				if x != sema.KindUnspecified {
					return x
				}
				return y
			default:
				// Products and quotients change dimension; still descend so
				// mixed sums inside them are found.
				kindOf(e.X)
				kindOf(e.Y)
			}
		case *ast.Call:
			for _, a := range e.Args {
				kindOf(a)
			}
		case *ast.Attribute:
			kindOf(e.X)
		}
		return sema.KindUnspecified
	}
	for _, st := range d.Arch.Stmts {
		ast.Walk(st, func(n ast.Node) bool {
			ss, ok := n.(*ast.SimpleSimultaneous)
			if !ok {
				return true
			}
			l, r := kindOf(ss.LHS), kindOf(ss.RHS)
			if l != sema.KindUnspecified && r != sema.KindUnspecified && l != r {
				u.Report(diag.CodeDimension, ss.SpanV,
					"equation relates a %s quantity to a %s quantity", l, r).
					WithFix("convert one side explicitly (multiply by an impedance or admittance constant)")
			}
			return true
		})
	}
}

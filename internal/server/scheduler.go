package server

import (
	"sync"

	"vase/internal/mapper"
)

// scheduler arbitrates the shared branch-and-bound worker budget across
// concurrent synthesize requests. A lease never blocks: when the budget is
// exhausted the request proceeds with a single worker (the sequential
// search) instead of queueing — by the mapper's determinism contract the
// result is identical at any worker count, so contention degrades latency,
// never answers. avail can therefore dip below zero by at most one worker
// per in-flight request, which admission control bounds.
type scheduler struct {
	mu     sync.Mutex
	budget int
	avail  int
}

func newScheduler(budget int) *scheduler {
	return &scheduler{budget: budget, avail: budget}
}

// lease grants between 1 and want workers (want <= 0 selects the mapper's
// GOMAXPROCS default). The caller must release exactly the granted count.
func (s *scheduler) lease(want int) int {
	want = mapper.EffectiveWorkers(want)
	s.mu.Lock()
	defer s.mu.Unlock()
	got := want
	if got > s.avail {
		got = s.avail
	}
	if got < 1 {
		got = 1
	}
	s.avail -= got
	return got
}

func (s *scheduler) release(n int) {
	s.mu.Lock()
	s.avail += n
	s.mu.Unlock()
}

// available reports the uncommitted worker count (may be negative under
// oversubscription; for /metrics).
func (s *scheduler) available() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.avail
}

package vhif

import (
	"fmt"
	"sort"
	"strings"
)

// Dump renders the module in the VHIF text format: a deterministic,
// human-readable serialization used by the CLI tools and golden tests.
func (m *Module) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s\n", m.Name)
	for _, p := range m.Ports {
		dir := "in"
		if p.Dir == DirOut {
			dir = "out"
		}
		kind := "quantity"
		if p.Kind == PortSignal {
			kind = "signal"
		}
		var attrs []string
		if p.Limited {
			attrs = append(attrs, fmt.Sprintf("limited@%g", p.LimitAt))
		}
		if p.DrivesOhms != 0 {
			attrs = append(attrs, fmt.Sprintf("drives=%gohm", p.DrivesOhms))
		}
		if p.PeakDrive != 0 {
			attrs = append(attrs, fmt.Sprintf("peak=%gv", p.PeakDrive))
		}
		if !p.Voltage {
			attrs = append(attrs, "current")
		}
		if p.Impedance != 0 {
			attrs = append(attrs, fmt.Sprintf("impedance=%g", p.Impedance))
		}
		if p.FreqHi != 0 || p.FreqLo != 0 {
			attrs = append(attrs, fmt.Sprintf("freq=%g:%g", p.FreqLo, p.FreqHi))
		}
		if p.RangeHi != 0 || p.RangeLo != 0 {
			attrs = append(attrs, fmt.Sprintf("range=%g:%g", p.RangeLo, p.RangeHi))
		}
		suffix := ""
		if len(attrs) > 0 {
			suffix = " [" + strings.Join(attrs, " ") + "]"
		}
		fmt.Fprintf(&b, "  port %s %s %s%s\n", dir, kind, p.Name, suffix)
	}
	for _, g := range m.Graphs {
		b.WriteString(g.dump("  "))
	}
	for _, f := range m.FSMs {
		b.WriteString(f.dump("  "))
	}
	if len(m.Controls) > 0 {
		var links []string
		for _, c := range m.Controls {
			links = append(links, fmt.Sprintf("  control %s -> %s\n", c.Signal, c.Net.Name))
		}
		sort.Strings(links)
		b.WriteString(strings.Join(links, ""))
	}
	return b.String()
}

func (g *Graph) dump(indent string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%sgraph %s\n", indent, g.Name)
	for _, blk := range g.Blocks {
		var parts []string
		for _, in := range blk.Inputs {
			parts = append(parts, in.Name)
		}
		line := fmt.Sprintf("%s  %s %s", indent, blk.Kind, blk.Name)
		if blk.Kind.HasParam() {
			line += fmt.Sprintf(" param=%g", blk.Param)
		}
		if blk.Param2 != 0 {
			line += fmt.Sprintf(" param2=%g", blk.Param2)
		}
		if blk.Hyst != 0 {
			line += fmt.Sprintf(" hyst=%g", blk.Hyst)
		}
		if blk.FromFSM {
			line += " fsm"
		}
		if len(parts) > 0 {
			line += " in=(" + strings.Join(parts, ", ") + ")"
		}
		if blk.Ctrl != nil {
			line += " ctrl=" + blk.Ctrl.Name
		}
		if blk.Out != nil {
			line += " out=" + blk.Out.Name
		}
		b.WriteString(line + "\n")
	}
	return b.String()
}

func (f *FSM) dump(indent string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%sfsm %s\n", indent, f.Name)
	for _, s := range f.States {
		fmt.Fprintf(&b, "%s  state %s\n", indent, s.Name)
		for _, op := range s.Ops {
			fmt.Fprintf(&b, "%s    %s\n", indent, op)
		}
	}
	for _, a := range f.Arcs {
		fmt.Fprintf(&b, "%s  arc %s\n", indent, a)
	}
	return b.String()
}

package server

import (
	"context"
	"encoding/json"
	"net/http"

	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/project"
)

// --- /v1/project/diagnostics ---------------------------------------------

type projectFileJSON struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

type projectDiagnosticsRequest struct {
	Files     []projectFileJSON `json:"files"`
	TimeoutMS int               `json:"timeout_ms"`
}

type projectUnitJSON struct {
	Entity  string `json:"entity"`
	Arch    string `json:"arch"`
	File    string `json:"file"`
	Partial bool   `json:"partial"`
	Cached  bool   `json:"cached"`
}

type projectDiagnosticsResponse struct {
	Diagnostics  json.RawMessage   `json:"diagnostics"`
	Errors       int               `json:"errors"`
	Warnings     int               `json:"warnings"`
	Units        []projectUnitJSON `json:"units"`
	Partial      bool              `json:"partial"`
	ReusedParses int               `json:"reused_parses"`
	ReusedUnits  int               `json:"reused_units"`
}

// handleProjectDiagnostics checks a multi-file project with the recovering
// front end and returns every diagnostic across the file set. Broken
// sources are a 200/422 with structured findings, never a bare error: the
// recovery machinery guarantees an analysis exists for any input. The
// response's reused_* counters surface the pipeline's incremental reuse, so
// clients (editors, CI bots) can see that re-posting a project with one
// edited file re-analyzes only the affected units.
func (s *Server) handleProjectDiagnostics(w http.ResponseWriter, r *http.Request) *httpError {
	var req projectDiagnosticsRequest
	if herr := readJSON(r, &req); herr != nil {
		return herr
	}
	if len(req.Files) == 0 {
		return errorf(http.StatusBadRequest, "files is required")
	}
	seen := map[string]bool{}
	files := make([]project.File, 0, len(req.Files))
	for i, f := range req.Files {
		if f.Name == "" {
			return errorf(http.StatusBadRequest, "files[%d]: name is required", i)
		}
		if seen[f.Name] {
			return errorf(http.StatusBadRequest, "files[%d]: duplicate file name %q", i, f.Name)
		}
		seen[f.Name] = true
		files = append(files, project.File{Name: f.Name, Text: f.Source})
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.deadline(req.TimeoutMS))
	defer cancel()

	snap, err := s.proj.Check(ctx, files)
	if err != nil {
		return ctxError(ctx, err)
	}
	data, jerr := snap.Diags.JSON()
	if jerr != nil {
		return errorf(http.StatusInternalServerError, "encoding diagnostics: %v", jerr)
	}
	units := make([]projectUnitJSON, 0, len(snap.Units))
	for _, u := range snap.Units {
		partial := u.Design != nil && u.Design.Partial
		units = append(units, projectUnitJSON{
			Entity: u.Entity, Arch: u.Arch, File: u.File,
			Partial: partial, Cached: u.Cached,
		})
	}
	// Mirror /v1/lint: error findings are a 422, with the full analysis in
	// the body either way.
	status := http.StatusOK
	if snap.Diags.HasErrors() {
		status = http.StatusUnprocessableEntity
	}
	s.reply(w, "project", status, projectDiagnosticsResponse{
		Diagnostics:  data,
		Errors:       snap.Diags.Count(diag.Error),
		Warnings:     snap.Diags.Count(diag.Warning),
		Units:        units,
		Partial:      snap.Partial,
		ReusedParses: snap.ReusedParses,
		ReusedUnits:  snap.ReusedUnits,
	})
	return nil
}

// partialASTSummary describes what the recovering parser salvaged from a
// broken source: attached to /v1/parse and /v1/lint error responses so
// clients see how much structure survived, not just that compilation
// failed.
type partialASTSummary struct {
	Units         int  `json:"units"`
	Entities      int  `json:"entities"`
	Architectures int  `json:"architectures"`
	ErrorNodes    int  `json:"error_nodes"`
	Partial       bool `json:"partial"`
}

// partialAST re-parses the source with recovery (memoized, so this is a
// cache hit whenever the failing stage already parsed it) and summarizes
// what survived. Returns nil when the source parsed cleanly or the context
// expired.
func (s *Server) partialAST(ctx context.Context, name, source string) *partialASTSummary {
	pr, err := s.pipe.ParseRecover(ctx, name, source)
	if err != nil || !pr.Partial {
		return nil
	}
	return &partialASTSummary{
		Units:         len(pr.AST.Units),
		Entities:      len(pr.AST.Entities()),
		Architectures: len(pr.AST.Architectures()),
		ErrorNodes:    ast.CountErrors(pr.AST),
		Partial:       pr.Partial,
	}
}

// attachPartialAST merges a partial-AST summary into an error response.
func (s *Server) attachPartialAST(ctx context.Context, herr *httpError, name, source string) {
	sum := s.partialAST(ctx, name, source)
	if sum == nil {
		return
	}
	if herr.extra == nil {
		herr.extra = map[string]any{}
	}
	herr.extra["partial_ast"] = sum
}

package sema

import (
	"strings"
	"testing"

	"vase/internal/ast"
	"vase/internal/parser"
)

func analyze(t *testing.T, src string) *Design {
	t.Helper()
	df, err := parser.Parse("test.vhd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := AnalyzeOne(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return d
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	df, err := parser.Parse("test.vhd", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = AnalyzeOne(df)
	if err == nil {
		t.Fatal("expected semantic error, got none")
	}
	return err
}

const receiverSrc = `
entity telephone is
  port (
    quantity line  : in real is voltage;
    quantity local : in real is voltage;
    quantity earph : out real is voltage limited at 1.5 drives 270.0 at 0.285 peak
  );
end entity;
architecture behavioral of telephone is
  constant Aline  : real := 4.0;
  constant Alocal : real := 2.0;
  constant r1c    : real := 0.5;
  constant r2c    : real := 0.25;
  constant Vth    : real := 0.1;
  quantity rvar : real;
  signal c1 : bit;
begin
  earph == (Aline * line + Alocal * local) * rvar;
  if (c1 = '1') use
    rvar == r1c;
  else
    rvar == r1c + r2c;
  end use;
  process (line'above(Vth)) is
  begin
    if (line'above(Vth) = true) then
      c1 <= '1';
    else
      c1 <= '0';
    end if;
  end process;
end architecture;
`

func TestAnalyzeReceiver(t *testing.T) {
	d := analyze(t, receiverSrc)
	if d.Name != "telephone" {
		t.Errorf("design name = %q", d.Name)
	}
	if len(d.Ports) != 3 {
		t.Fatalf("ports = %d, want 3", len(d.Ports))
	}
	earph := d.Lookup("earph")
	if earph == nil {
		t.Fatal("earph not found")
	}
	if !earph.Attr.Limited || earph.Attr.LimitAt != 1.5 {
		t.Errorf("earph limit = %v at %g, want limited at 1.5", earph.Attr.Limited, earph.Attr.LimitAt)
	}
	if earph.Attr.DrivesOhms != 270.0 {
		t.Errorf("earph drives = %g, want 270", earph.Attr.DrivesOhms)
	}
	if earph.Attr.PeakDrive != 0.285 {
		t.Errorf("earph peak = %g, want 0.285", earph.Attr.PeakDrive)
	}
	if earph.Attr.Kind != KindVoltage {
		t.Errorf("earph kind = %v, want voltage", earph.Attr.Kind)
	}
}

func TestReceiverStats(t *testing.T) {
	d := analyze(t, receiverSrc)
	// Figure 2 / Table 1: 4 quantities, 1 signal (the paper counts 2 by
	// including the implicit event signal; our corpus version matches that
	// with an explicit second signal).
	if d.Stats.QuantityCount != 4 {
		t.Errorf("quantities = %d, want 4", d.Stats.QuantityCount)
	}
	if d.Stats.SignalCount != 1 {
		t.Errorf("signals = %d, want 1", d.Stats.SignalCount)
	}
	if d.Stats.ContinuousLines == 0 || d.Stats.EventLines == 0 {
		t.Errorf("line stats = %+v, want non-zero", d.Stats)
	}
}

func TestConstantFolding(t *testing.T) {
	d := analyze(t, `
entity e is end entity;
architecture a of e is
  constant k : real := 2.0 * 3.0 + 1.0;
  quantity q : real;
begin
  q == k;
end architecture;`)
	k := d.Lookup("k")
	if k.Const == nil || k.Const.AsReal() != 7.0 {
		t.Fatalf("k = %v, want 7", k.Const)
	}
}

func TestConstantBuiltinFolding(t *testing.T) {
	d := analyze(t, `
entity e is end entity;
architecture a of e is
  constant k : real := exp(0.0) + sqrt(4.0);
  quantity q : real;
begin
  q == k;
end architecture;`)
	k := d.Lookup("k")
	if k.Const == nil || k.Const.AsReal() != 3.0 {
		t.Fatalf("k = %v, want 3", k.Const)
	}
}

func TestUndeclaredName(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  quantity q : real;
begin
  q == nosuch;
end architecture;`)
	if !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("error = %v", err)
	}
}

func TestQuantityMustBeNature(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  quantity q : bit;
begin
  q == q;
end architecture;`)
	if !strings.Contains(err.Error(), "nature") {
		t.Errorf("error = %v", err)
	}
}

func TestForLoopStaticBounds(t *testing.T) {
	// Static for bounds and a self-converging while loop are both legal.
	analyze(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
begin
  procedural is
    variable acc : real;
  begin
    acc := 0.0;
    for i in 1 to 3 loop
      acc := acc + x;
    end loop;
    while acc > x loop
      acc := acc * 0.5;
    end loop;
    y := acc;
  end procedural;
end architecture;`)
}

func TestForLoopDynamicBoundRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
begin
  procedural is
    variable acc : real;
  begin
    acc := 0.0;
    for i in 1 to x loop
      acc := acc + 1.0;
    end loop;
    y := acc;
  end procedural;
end architecture;`)
	if !strings.Contains(err.Error(), "statically known") {
		t.Errorf("error = %v", err)
	}
}

func TestWhileMustDependOnLoopBody(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
begin
  procedural is
    variable acc : real;
  begin
    acc := x;
    while x > 1.0 loop
      acc := acc * 0.5;
    end loop;
    y := acc;
  end procedural;
end architecture;`)
	if !strings.Contains(err.Error(), "while condition") {
		t.Errorf("error = %v", err)
	}
}

func TestSignalReadAfterWriteRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  signal s, r : bit;
begin
  process (r) is
  begin
    s <= '1';
    if (s = '1') then
      s <= '0';
    end if;
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "read after being assigned") {
		t.Errorf("error = %v", err)
	}
}

func TestProcessRequiresSensitivity(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  signal s : bit;
begin
  process is
  begin
    s <= '1';
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "sensitivity") {
		t.Errorf("error = %v", err)
	}
}

func TestSignalAssignOutsideProcessRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
  signal s : bit;
begin
  procedural is
  begin
    s <= '1';
    y := x;
  end procedural;
end architecture;`)
	if !strings.Contains(err.Error(), "process") {
		t.Errorf("error = %v", err)
	}
}

func TestQuantityInSimultaneousIfCondRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
begin
  if (x > 1.0) use
    y == x;
  else
    y == 2.0 * x;
  end use;
end architecture;`)
	if !strings.Contains(err.Error(), "control signal") {
		t.Errorf("error = %v", err)
	}
}

func TestUndrivenOutputRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity x : in real; quantity y : out real);
end entity;
architecture a of e is
  quantity q : real;
begin
  q == x;
end architecture;`)
	if !strings.Contains(err.Error(), "never defined") {
		t.Errorf("error = %v", err)
	}
}

func TestAboveAttributeTyping(t *testing.T) {
	d := analyze(t, receiverSrc)
	proc := d.Arch.Stmts[2].(*ast.Process)
	attr := proc.Sensitivity[0].(*ast.Attribute)
	if ty := d.TypeOf(attr); ty.Kind != TBool {
		t.Errorf("'above type = %s, want boolean", ty)
	}
}

func TestDotAttribute(t *testing.T) {
	d := analyze(t, `
entity osc is
  port (quantity x : out real);
end entity;
architecture a of osc is
  quantity v : real;
begin
  x'dot == v;
  v'dot == -x;
end architecture;`)
	ss := d.Arch.Stmts[0].(*ast.SimpleSimultaneous)
	if ty := d.TypeOf(ss.LHS); ty.Kind != TReal {
		t.Errorf("x'dot type = %s, want real", ty)
	}
}

func TestUserFunction(t *testing.T) {
	d := analyze(t, `
package p is
  function double(x : real) return real;
end package;
package body p is
  function double(x : real) return real is
  begin
    return 2.0 * x;
  end function;
end package body;
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  procedural is
  begin
    y := double(a);
  end procedural;
end architecture;`)
	f := d.Lookup("double")
	if f == nil || f.Kind != SymFunction {
		t.Fatal("function double not visible in design scope")
	}
	if f.Func.Decl == nil || f.Func.Decl.Body == nil {
		t.Error("function body not linked from package body")
	}
}

func TestFunctionMissingReturnRejected(t *testing.T) {
	err := analyzeErr(t, `
package p is
  function f(x : real) return real is
  begin
    x := x;
  end function;
end package;
entity e is end entity;
architecture a of e is
  quantity q : real;
begin
  q == 1.0;
end architecture;`)
	if !strings.Contains(err.Error(), "return") {
		t.Errorf("error = %v", err)
	}
}

func TestWrongArgumentCount(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  procedural is
  begin
    y := exp(a, a);
  end procedural;
end architecture;`)
	if !strings.Contains(err.Error(), "arguments") {
		t.Errorf("error = %v", err)
	}
}

func TestAssignToInputRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  procedural is
  begin
    a := 1.0;
    y := a;
  end procedural;
end architecture;`)
	if !strings.Contains(err.Error(), "input port") {
		t.Errorf("error = %v", err)
	}
}

func TestBitBoolComparison(t *testing.T) {
	// c1 = '1' compares a bit signal with a bit literal; legal.
	analyze(t, receiverSrc)
}

func TestDuplicateDeclarationRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  quantity q : real;
  signal q : bit;
begin
  q == 1.0;
end architecture;`)
	if !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("error = %v", err)
	}
}

func TestArchitectureUnknownEntity(t *testing.T) {
	df, err := parser.Parse("t", `architecture a of ghost is begin end architecture;`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Analyze(df); err == nil || !strings.Contains(err.Error(), "unknown entity") {
		t.Errorf("error = %v", err)
	}
}

func TestTypeOfArithmetic(t *testing.T) {
	d := analyze(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  y == 2.0 * a + 1.0;
end architecture;`)
	ss := d.Arch.Stmts[0].(*ast.SimpleSimultaneous)
	if ty := d.TypeOf(ss.RHS); ty.Kind != TReal {
		t.Errorf("rhs type = %s, want real", ty)
	}
}

func TestEvalBuiltinTable(t *testing.T) {
	cases := []struct {
		name string
		args []float64
		want float64
		ok   bool
	}{
		{"log", []float64{1}, 0, true},
		{"log", []float64{-1}, 0, false},
		{"exp", []float64{0}, 1, true},
		{"sqrt", []float64{9}, 3, true},
		{"sqrt", []float64{-1}, 0, false},
		{"min", []float64{2, 3}, 2, true},
		{"max", []float64{2, 3}, 3, true},
		{"sign", []float64{-5}, -1, true},
		{"sign", []float64{0}, 0, true},
		{"abs", []float64{-2}, 2, true},
		{"nosuch", []float64{1}, 0, false},
	}
	for _, c := range cases {
		got, ok := EvalBuiltin(c.name, c.args)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("EvalBuiltin(%s, %v) = %g,%t want %g,%t", c.name, c.args, got, ok, c.want, c.ok)
		}
	}
}

func TestCaseUseRequiresOthers(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  signal m : bit;
  quantity q : real;
begin
  case m use
    when '0' => q == 1.0;
  end case;
end architecture;`)
	if !strings.Contains(err.Error(), "others") {
		t.Errorf("error = %v", err)
	}
}

func TestVectorIndexing(t *testing.T) {
	d := analyze(t, `
entity e is
  port (quantity v : in real_vector(1 to 3); quantity y : out real);
end entity;
architecture a of e is
begin
  y == v(2);
end architecture;`)
	v := d.Lookup("v")
	if v.Type.Kind != TRealVector || v.Type.Len != 3 {
		t.Errorf("v type = %v", v.Type)
	}
}

func TestVectorIndexArityChecked(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity v : in real_vector(1 to 3); quantity y : out real);
end entity;
architecture a of e is
begin
  y == v(1, 2);
end architecture;`)
	if !strings.Contains(err.Error(), "one index") {
		t.Errorf("error = %v", err)
	}
}

func TestUnknownAttributeRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
begin
  y == a'zapp;
end architecture;`)
	if !strings.Contains(err.Error(), "unsupported attribute") {
		t.Errorf("error = %v", err)
	}
}

func TestAboveRequiresQuantity(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  signal s, r : bit;
begin
  process (s'above(1.0)) is begin
    r <= '1';
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "'above requires a quantity") {
		t.Errorf("error = %v", err)
	}
}

func TestProcessDeclRestrictions(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  signal s : bit;
begin
  process (s) is
    signal inner : bit;
  begin
    s <= '1';
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "variables or constants") {
		t.Errorf("error = %v", err)
	}
}

func TestUnknownTypeRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  quantity q : complex;
begin
  q == 1.0;
end architecture;`)
	if !strings.Contains(err.Error(), "unknown type") {
		t.Errorf("error = %v", err)
	}
}

func TestUnknownAnnotationRejected(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity a : in real is sparkly; quantity y : out real);
end entity;
architecture arch of e is
begin
  y == a;
end architecture;`)
	if !strings.Contains(err.Error(), "unknown annotation") {
		t.Errorf("error = %v", err)
	}
}

func TestLogicalOperandTyping(t *testing.T) {
	err := analyzeErr(t, `
entity e is
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of e is
  signal s : bit;
begin
  y == a;
  process (a'above(1.0)) is begin
    if (a and s) = '1' then
      s <= '1';
    else
      s <= '0';
    end if;
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "logical operator") {
		t.Errorf("error = %v", err)
	}
}

func TestOrderingRequiresNumeric(t *testing.T) {
	err := analyzeErr(t, `
entity e is end entity;
architecture a of e is
  signal s, r : bit;
begin
  process (r) is begin
    if s < r then
      s <= '1';
    else
      s <= '0';
    end if;
  end process;
end architecture;`)
	if !strings.Contains(err.Error(), "ordering comparison") {
		t.Errorf("error = %v", err)
	}
}

func TestGenericDefaultUsable(t *testing.T) {
	d := analyze(t, `
entity amp is
  generic (gain : real := 10.0);
  port (quantity a : in real; quantity y : out real);
end entity;
architecture arch of amp is
begin
  y == gain * a;
end architecture;`)
	g := d.Lookup("gain")
	if g == nil || g.Const == nil || g.Const.AsReal() != 10.0 {
		t.Errorf("generic default = %v", g)
	}
}

func TestMultipleDesignsAnalyzed(t *testing.T) {
	df, err := parser.Parse("multi.vhd", `
entity e1 is
  port (quantity a : in real; quantity y : out real);
end entity;
entity e2 is
  port (quantity b : in real; quantity z : out real);
end entity;
architecture a1 of e1 is begin y == a; end architecture;
architecture a2 of e2 is begin z == 2.0 * b; end architecture;`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ds, err := Analyze(df)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if len(ds) != 2 {
		t.Fatalf("designs = %d, want 2", len(ds))
	}
	if _, err := AnalyzeOne(df); err == nil {
		t.Error("AnalyzeOne should reject a two-architecture file")
	}
}

func TestConstantFoldingTable(t *testing.T) {
	cases := []struct {
		expr string
		want float64
	}{
		{"7 / 2", 3},       // integer division
		{"7.0 / 2.0", 3.5}, // real division
		{"7 mod 3", 1},
		{"2 ** 5", 32},
		{"abs (0.0 - 4.5)", 4.5},
		{"min(3.0, 2.0) + max(1.0, 5.0)", 7},
		{"-(2.5) * 4.0", -10},
	}
	for _, c := range cases {
		d := analyze(t, `
entity e is end entity;
architecture a of e is
  constant k : real := `+c.expr+`;
  quantity q : real;
begin
  q == k;
end architecture;`)
		k := d.Lookup("k")
		if k.Const == nil {
			t.Errorf("%s: not folded", c.expr)
			continue
		}
		if got := k.Const.AsReal(); got != c.want {
			t.Errorf("%s = %g, want %g", c.expr, got, c.want)
		}
	}
}

func TestBooleanConstantFolding(t *testing.T) {
	// Booleans fold through the full operator set in static contexts.
	d := analyze(t, `
entity e is end entity;
architecture a of e is
  constant n : real := 3.0;
  quantity q : real;
begin
  q == n;
end architecture;`)
	scope := d.Scope
	a := &analyzer{d: d}
	for _, c := range []struct {
		src  string
		want bool
	}{
		{"true and false", false},
		{"true or false", true},
		{"true xor true", false},
		{"true nand true", false},
		{"false nor false", true},
		{"not false", true},
		{"1.0 < 2.0", true},
		{"2.0 >= 3.0", false},
		{"1.0 /= 1.0", false},
	} {
		df, err := parser.Parse("x", `
entity x is end entity;
architecture ax of x is
  quantity q : real;
begin
  q == 1.0;
end architecture;`)
		if err != nil {
			t.Fatal(err)
		}
		_ = df
		expr := parseExprString(t, c.src)
		v := a.constOf(scope, expr)
		if v == nil {
			t.Errorf("%s: not folded", c.src)
			continue
		}
		if v.Bool != c.want {
			t.Errorf("%s = %t, want %t", c.src, v.Bool, c.want)
		}
	}
}

// parseExprString parses an expression by embedding it in a condition.
func parseExprString(t *testing.T, expr string) ast.Expr {
	t.Helper()
	df, err := parser.Parse("e", `
entity e is end entity;
architecture a of e is
  signal s : bit;
  quantity q : real;
begin
  q == 1.0;
  process (s) is begin
    if `+expr+` then
      s <= '1';
    else
      s <= '0';
    end if;
  end process;
end architecture;`)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	proc := df.Architectures()[0].Stmts[1].(*ast.Process)
	return proc.Body[0].(*ast.IfStmt).Cond
}

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{RealValue(2.5), "2.5"},
		{IntValue(7), "7"},
		{BoolValue(true), "true"},
		{BitValue(true), "'1'"},
		{BitValue(false), "'0'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	if Real.String() != "real" || Bit.String() != "bit" || Bool.String() != "boolean" || Int.String() != "integer" {
		t.Error("scalar type names")
	}
	if (Type{Kind: TRealVector, Len: 3}).String() != "real_vector(3)" {
		t.Error("vector type name")
	}
}

package lint

import (
	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
	"vase/internal/token"
)

// constRangePass checks constants against the declared 'range of the
// quantity they interact with. An equation that pins a ranged quantity to a
// constant outside its range can never be satisfied within specification;
// a comparison or 'above threshold outside the range always evaluates the
// same way, so the branch it guards is dead.
var constRangePass = &Pass{
	Name: "constrange",
	Doc:  "constants and thresholds outside a quantity's declared range",
	Run:  runConstRange,
}

func runConstRange(u *Unit) {
	d := u.Design
	if d == nil {
		return
	}
	// rangedQty returns the symbol and its range when e names a quantity
	// carrying an explicit 'range annotation.
	rangedQty := func(e ast.Expr) *sema.Symbol {
		nm, ok := unparenExpr(e).(*ast.Name)
		if !ok {
			return nil
		}
		sym := d.Lookup(nm.Ident.Canon)
		if sym != nil && sym.Kind == sema.SymQuantity && sym.Attr.HasRange {
			return sym
		}
		return nil
	}
	constOf := func(e ast.Expr) (float64, bool) {
		if v := d.ConstOf(e); v != nil && v.Type.IsNumeric() {
			return v.AsReal(), true
		}
		return 0, false
	}
	outside := func(sym *sema.Symbol, c float64) bool {
		return c < sym.Attr.RangeLo || c > sym.Attr.RangeHi
	}

	for _, st := range d.Arch.Stmts {
		ast.Walk(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SimpleSimultaneous:
				sym, c, ok := qtyVsConst(rangedQty, constOf, n.LHS, n.RHS)
				if ok && outside(sym, c) {
					u.Report(diag.CodeConstOutOfRange, n.SpanV,
						"equation pins %q to %g, outside its declared range [%g, %g]",
						sym.Orig, c, sym.Attr.RangeLo, sym.Attr.RangeHi).
						WithFix("widen the 'range annotation or correct the constant")
				}
			case *ast.Binary:
				switch n.Op {
				case token.LT, token.LE, token.GT, token.GE:
					sym, c, ok := qtyVsConst(rangedQty, constOf, n.X, n.Y)
					if ok && outside(sym, c) {
						u.Report(diag.CodeDeadThreshold, n.SpanV,
							"comparison of %q against %g is constant: %g is outside the declared range [%g, %g]",
							sym.Orig, c, c, sym.Attr.RangeLo, sym.Attr.RangeHi).
							WithFix("move the threshold inside the range, or drop the dead branch")
					}
				}
			case *ast.Attribute:
				if n.Attr == "above" && len(n.Args) == 1 {
					sym := rangedQty(n.X)
					if sym == nil {
						return true
					}
					if c, ok := constOf(n.Args[0]); ok && outside(sym, c) {
						u.Report(diag.CodeDeadThreshold, n.SpanV,
							"'above threshold %g is outside the declared range [%g, %g] of %q, so the event never fires",
							c, sym.Attr.RangeLo, sym.Attr.RangeHi, sym.Orig).
							WithFix("move the threshold inside the range of %q", sym.Orig)
					}
				}
			}
			return true
		})
	}
}

// qtyVsConst matches "ranged-quantity vs constant" in either order.
func qtyVsConst(rangedQty func(ast.Expr) *sema.Symbol, constOf func(ast.Expr) (float64, bool), a, b ast.Expr) (*sema.Symbol, float64, bool) {
	if sym := rangedQty(a); sym != nil {
		if c, ok := constOf(b); ok {
			return sym, c, true
		}
	}
	if sym := rangedQty(b); sym != nil {
		if c, ok := constOf(a); ok {
			return sym, c, true
		}
	}
	return nil, 0, false
}

// Fuzz targets for the VASS front end: the lexer and parser must reject
// arbitrary input with diagnostics, never a panic. Seeds mix hand-picked
// syntax fragments with the full corpus application sources.
package parser_test

import (
	"testing"

	"vase/internal/corpus"
	"vase/internal/diag"
	"vase/internal/gen"
	"vase/internal/lexer"
	"vase/internal/parser"
	"vase/internal/source"
	"vase/internal/token"
)

// fuzzSeeds are small VASS fragments chosen to steer the fuzzer toward the
// grammar's edges: attributes, based literals, guarded statements, loops.
var fuzzSeeds = []string{
	"",
	"entity e is end entity;",
	"entity e is port (quantity a : in real is voltage); end entity;",
	`architecture a of e is
begin
  procedural is
    variable t : real;
  begin
    t := 16#ff# * 1.0e-3;
  end procedural;
end architecture;`,
	`architecture a of e is
  signal c : bit;
begin
  if (c = '1') use y == w; else y == -w; end use;
end architecture;`,
	"process (a'above(1.0)) is begin end process;",
	"while acc > 1.0 loop acc := acc * 0.5; end loop;",
	"-- comment only\n",
	"'",
	"16#",
	"entity \x00 is",
}

func addSeeds(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for _, app := range corpus.Applications() {
		f.Add(app.Source)
	}
	for _, app := range corpus.Extras() {
		f.Add(app.Source)
	}
	// Generated specs exercise grammar shapes the hand-written corpus does
	// not (deep parenthesization, assert pragmas, 100+-statement bodies).
	for i := 0; i < 12; i++ {
		f.Add(gen.Generate(1, i, gen.MixedSize(i)).Source)
	}
}

func FuzzLexer(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		var errs diag.List
		toks := lexer.ScanAll(source.NewFile("fuzz.vhd", src), &errs)
		// Every token span must slice the file without panicking.
		file := source.NewFile("fuzz.vhd", src)
		for _, tok := range toks {
			if tok.Span.IsValid() {
				_ = file.Slice(tok.Span)
			}
		}
	})
}

func FuzzParse(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		// Errors are expected on arbitrary input; panics are not.
		_, _ = parser.Parse("fuzz.vhd", src)
	})
}

// FuzzParseRecover checks the recovery contract on arbitrary bytes: the
// recovering parser never panics, always returns a design file, and every
// token of the input is covered by some top-level unit span (ERROR nodes
// tile whatever the grammar could not claim).
func FuzzParseRecover(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		df, _ := parser.ParseCollect("fuzz.vhd", src)
		if df == nil || df.File == nil {
			t.Fatal("ParseCollect returned an incomplete design file")
		}
		var lexErrs diag.List
		toks := lexer.ScanAll(source.NewFile("fuzz.vhd", src), &lexErrs)
		for _, tok := range toks {
			if tok.Kind == token.EOF {
				continue
			}
			covered := false
			for _, u := range df.Units {
				sp := u.Span()
				if sp.IsValid() && sp.Start <= tok.Span.Start && tok.Span.End <= sp.End {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("token %s %q at [%d,%d) not covered by any unit span",
					tok.Kind, tok.Text, tok.Span.Start, tok.Span.End)
			}
		}
	})
}

// Anytime contract of the architecture generator, checked corpus-wide: a
// cancelled or deadlined search must return a valid, netlist-checkable
// incumbent tagged Nonoptimal instead of failing, an uncancelled run must
// stay byte-identical to the plain Synthesize path, and repeated truncated
// parallel runs must not leak goroutines.
package mapper_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"vase/internal/corpus"
	"vase/internal/mapper"
)

// checkIncumbent asserts the result is a usable implementation: a non-empty
// netlist that is structurally sound (acyclic component DAG) and estimable.
func checkIncumbent(t *testing.T, key string, res *mapper.Result) {
	t.Helper()
	if res == nil || res.Netlist == nil {
		t.Fatalf("%s: truncated run returned no netlist", key)
	}
	if res.Netlist.OpAmpCount() < 1 {
		t.Errorf("%s: incumbent has no op amps", key)
	}
	if _, err := res.Netlist.Topological(); err != nil {
		t.Errorf("%s: incumbent netlist is not a sound DAG: %v", key, err)
	}
	if res.Report == nil || res.Report.AreaUm2 <= 0 {
		t.Errorf("%s: incumbent has no area estimate", key)
	}
	if res.Netlist.Dump() == "" {
		t.Errorf("%s: incumbent netlist dump is empty", key)
	}
}

// TestCancelledSearchReturnsIncumbent runs every corpus design under an
// already-cancelled context — the hardest deadline there is. The search
// must still hand back a complete implementation, tagged Nonoptimal.
func TestCancelledSearchReturnsIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, nm := range corpusModules(t) {
		for _, workers := range []int{1, 4} {
			opts := mapper.DefaultOptions()
			opts.Workers = workers
			res, err := mapper.SynthesizeContext(ctx, nm.m, opts)
			if err != nil {
				t.Fatalf("%s (workers=%d): cancelled search failed instead of returning incumbent: %v", nm.key, workers, err)
			}
			if !res.Nonoptimal {
				t.Errorf("%s (workers=%d): cancelled search did not set Nonoptimal", nm.key, workers)
			}
			checkIncumbent(t, nm.key, res)
		}
	}
}

// TestDeadlinedBuildReturnsIncumbent is the acceptance scenario: a
// deadlined receiver Build yields a usable architecture. The context is
// cancelled up front so expiry is certain regardless of machine speed.
func TestDeadlinedBuildReturnsIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := mapper.DefaultOptions()
	opts.Deadline = 10 * time.Millisecond
	b, err := corpus.BuildAppContext(ctx, corpus.ByKey("receiver"), opts)
	if err != nil {
		t.Fatalf("deadlined build failed instead of returning incumbent: %v", err)
	}
	if !b.Result.Nonoptimal {
		t.Error("deadlined build did not set Nonoptimal")
	}
	checkIncumbent(t, "receiver", b.Result)
	if b.AreaUm2 <= 0 {
		t.Errorf("deadlined build area = %g, want > 0", b.AreaUm2)
	}
}

// TestNodeBudgetReturnsIncumbent exhausts a tiny MaxNodes budget; the
// greedy fallback must still produce a complete mapping.
func TestNodeBudgetReturnsIncumbent(t *testing.T) {
	for _, nm := range corpusModules(t) {
		opts := mapper.DefaultOptions()
		opts.Workers = 1
		opts.MaxNodes = 2
		res, err := mapper.SynthesizeContext(context.Background(), nm.m, opts)
		if err != nil {
			t.Fatalf("%s: budget-bound search failed: %v", nm.key, err)
		}
		if !res.Nonoptimal {
			t.Errorf("%s: binding node budget did not set Nonoptimal", nm.key)
		}
		checkIncumbent(t, nm.key, res)
	}
}

// TestUncancelledRunByteIdentical pins the no-degradation guarantee: with a
// background context (or the plain Synthesize entry point) the anytime
// plumbing must be invisible — identical netlist bytes, Nonoptimal unset.
func TestUncancelledRunByteIdentical(t *testing.T) {
	for _, nm := range corpusModules(t) {
		opts := mapper.DefaultOptions()
		plain, err := mapper.Synthesize(nm.m, opts)
		if err != nil {
			t.Fatalf("%s: Synthesize: %v", nm.key, err)
		}
		ctxRes, err := mapper.SynthesizeContext(context.Background(), nm.m, opts)
		if err != nil {
			t.Fatalf("%s: SynthesizeContext: %v", nm.key, err)
		}
		if plain.Nonoptimal || ctxRes.Nonoptimal {
			t.Errorf("%s: unbounded run marked Nonoptimal", nm.key)
		}
		if a, b := plain.Netlist.Dump(), ctxRes.Netlist.Dump(); a != b {
			t.Errorf("%s: background-context netlist differs from plain Synthesize:\n--- plain ---\n%s\n--- context ---\n%s", nm.key, a, b)
		}
	}
}

// TestTruncatedParallelRunsDoNotLeakGoroutines hammers the parallel search
// with deadlines that expire mid-run and checks the goroutine count settles
// back to the baseline (the repo vendors no dependencies, so this stands in
// for goleak).
func TestTruncatedParallelRunsDoNotLeakGoroutines(t *testing.T) {
	mods := corpusModules(t)
	receiver := mods[0].m
	for _, nm := range mods {
		if nm.key == "receiver" {
			receiver = nm.m
		}
	}
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%5)*100*time.Microsecond)
		opts := mapper.DefaultOptions()
		opts.Workers = 4
		if _, err := mapper.SynthesizeContext(ctx, receiver, opts); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		cancel()
	}
	// Worker goroutines exit after reduce(); give the scheduler a moment.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"entity":       ENTITY,
		"ENTITY":       ENTITY,
		"Procedural":   PROCEDURAL,
		"quantity":     QUANTITY,
		"use":          USE,
		"downto":       DOWNTO,
		"earph":        IDENT,
		"not_a_kw":     IDENT,
		"architecture": ARCHITECTURE,
	}
	for s, want := range cases {
		if got := Lookup(s); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", s, got, want)
		}
	}
}

func TestEveryKeywordRoundTrips(t *testing.T) {
	for k := keywordBeg + 1; k < keywordEnd; k++ {
		if got := Lookup(k.String()); got != k {
			t.Errorf("Lookup(%q) = %v, want %v", k.String(), got, k)
		}
		if !k.IsKeyword() {
			t.Errorf("%v should be a keyword", k)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !IDENT.IsLiteral() || !REALLIT.IsLiteral() {
		t.Error("literal predicates")
	}
	if !PLUS.IsOperator() || !SEMICOLON.IsOperator() {
		t.Error("operator predicates")
	}
	if ENTITY.IsLiteral() || ENTITY.IsOperator() {
		t.Error("entity misclassified")
	}
	if PLUS.IsKeyword() {
		t.Error("plus is not a keyword")
	}
}

func TestPrecedenceOrdering(t *testing.T) {
	// ** > * > + > relations > logical.
	if !(DSTAR.Precedence() > STAR.Precedence() &&
		STAR.Precedence() > PLUS.Precedence() &&
		PLUS.Precedence() > LT.Precedence() &&
		LT.Precedence() > AND.Precedence() &&
		AND.Precedence() > LowestPrec) {
		t.Error("precedence chain broken")
	}
	if SEMICOLON.Precedence() != LowestPrec {
		t.Error("punctuation must have lowest precedence")
	}
}

func TestStringFallback(t *testing.T) {
	if s := Kind(9999).String(); s != "token(9999)" {
		t.Errorf("fallback = %q", s)
	}
	if EOF.String() != "EOF" {
		t.Errorf("EOF = %q", EOF.String())
	}
}

package corpus

import (
	"context"
	"math"

	"vase/internal/assertlang"
	"vase/internal/mna"
)

// Figure8AssertionTexts is the golden dense-time property set for the
// paper's Figure 8 experiment: the receiver driven with a deliberately
// high-amplitude 1 kHz line input clips its earphone output at +-1.5 V.
// The bounds carry a small margin over the ideal clip level (the op-amp
// macromodel overshoots the limiter by a few percent), and the eventually/
// recurrence properties pin down that clipping actually happens — on both
// rails, and once per input period.
var Figure8AssertionTexts = []string{
	"bound earph in -1.6 .. 1.6",
	"eventually v(earph) >= 1.4 within 1e-3",
	"eventually v(earph) <= -1.4 within 1.5e-3",
	"recurrence v(earph) >= 1.4 every 1.2e-3",
}

// Figure8Assertions parses the golden Figure 8 property set.
func Figure8Assertions() []*assertlang.Assertion {
	as := make([]*assertlang.Assertion, len(Figure8AssertionTexts))
	for i, text := range Figure8AssertionTexts {
		a, err := assertlang.Parse(text)
		if err != nil {
			panic("corpus: bad golden assertion " + text + ": " + err.Error())
		}
		as[i] = a
	}
	return as
}

// Figure8Monitored reruns the Figure 8 experiment with the golden
// assertions attached as streaming monitors on the circuit-level
// transient. maxSteps bounds the integration (0 = the full 3 ms run); a
// truncated run resolves undecided assertions to Unknown, never Fail.
// The context cancels the transient midway like any anytime run; onSample
// (optional) observes each recorded sample time — tests use it to cancel
// at a deterministic point in the trace.
func Figure8Monitored(ctx context.Context, maxSteps int, onSample func(t float64)) ([]assertlang.Outcome, *mna.Elaborated, *mna.Tran, error) {
	b, err := BuildApp(ByKey("receiver"))
	if err != nil {
		return nil, nil, nil, err
	}
	el, err := mna.Elaborate(b.Result.Netlist, map[string]mna.Waveform{
		"line":  func(t float64) float64 { return 1.5 * math.Sin(2*math.Pi*1e3*t) },
		"local": func(float64) float64 { return 0 },
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ms := assertlang.Monitors(Figure8Assertions())
	el.Circuit.MaxTranSteps = maxSteps
	stream := assertlang.StreamCircuit(el, ms)
	el.Circuit.OnSample = func(t float64, v mna.Solution) {
		stream(t, v)
		if onSample != nil {
			onSample(t)
		}
	}
	tr, err := el.Circuit.TransientContext(ctx, 3e-3, 1e-6)
	if err != nil {
		return nil, nil, nil, err
	}
	return assertlang.FinishAll(ms, tr.Truncated), el, tr, nil
}

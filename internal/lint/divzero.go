package lint

import (
	"vase/internal/ast"
	"vase/internal/diag"
	"vase/internal/sema"
	"vase/internal/token"
)

// divZeroPass inspects every division in the design. A divisor that folds to
// the constant zero is an error (the divider block output is unbounded); a
// divisor that is an input quantity whose declared 'range includes zero is a
// warning — the analog divider will saturate whenever the input crosses
// zero, and nothing in the specification prevents that.
var divZeroPass = &Pass{
	Name: "divzero",
	Doc:  "division by zero or by a possibly-zero annotated input",
	Run:  runDivZero,
}

func runDivZero(u *Unit) {
	d := u.Design
	if d == nil {
		return
	}
	for _, st := range d.Arch.Stmts {
		ast.Walk(st, func(n ast.Node) bool {
			b, ok := n.(*ast.Binary)
			if !ok || b.Op != token.SLASH {
				return true
			}
			div := b.Y
			if v := d.ConstOf(div); v != nil && v.Type.IsNumeric() && v.AsReal() == 0 {
				u.Report(diag.CodeDivByZero, div.Span(), "division by constant zero").
					WithFix("the divider output is unbounded; fix the constant or restructure the equation")
				return true
			}
			if nm, ok := unparenExpr(div).(*ast.Name); ok {
				sym := d.Lookup(nm.Ident.Canon)
				if sym != nil && sym.Kind == sema.SymQuantity && sym.Attr.HasRange &&
					sym.Attr.RangeLo <= 0 && 0 <= sym.Attr.RangeHi {
					u.Report(diag.CodeDivMaybeZero, div.Span(),
						"divisor %q has declared range [%g, %g], which includes zero",
						sym.Orig, sym.Attr.RangeLo, sym.Attr.RangeHi).
						WithFix("tighten the 'range annotation or guard the division with an if/use")
				}
			}
			return true
		})
	}
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.Paren)
		if !ok {
			return e
		}
		e = p.X
	}
}

// Package mna implements a small analog circuit simulator based on
// modified nodal analysis: resistors, capacitors, independent and
// controlled sources, diodes, voltage-controlled switches, and saturating
// op-amp macromodels, with Newton-Raphson DC solution and fixed-step
// backward-Euler transient analysis.
//
// It substitutes for the SPICE runs of the paper's Section 6: synthesized
// netlists elaborate into op-amp macromodel circuits (see Elaborate) whose
// transient response reproduces the receiver experiment of Figure 8 —
// amplification, comparator-controlled gain switching, and diode clipping
// of the output stage.
//
// The linear-algebra core is built around structure reuse: a stamp plan
// records once per circuit which matrix slots every device touches, the
// elimination structure (including fill) is analyzed symbolically once, and
// every subsequent Newton iteration restamps and refactors in place inside
// preallocated flat storage — dense below a crossover dimension, CSR above
// it — with zero steady-state allocation. All solver modes produce
// bit-identical solutions (see factor.go for the argument).
package mna

import (
	"context"
	"fmt"
	"math"
)

// Node identifies a circuit node; 0 is ground.
type Node int

// Ground is the reference node.
const Ground Node = 0

// Waveform is a time-dependent source value.
type Waveform func(t float64) float64

// deviceKind enumerates element types.
type deviceKind int

const (
	dResistor deviceKind = iota
	dCapacitor
	dVSource
	dISource
	dVCVS
	dDiode
	dSwitch
	dOpAmp
	dFunc
)

// device is one circuit element.
type device struct {
	kind deviceKind
	name string
	// Terminals (interpretation depends on kind).
	a, b, cp, cm Node
	// value: R ohms, C farads, VCVS gain.
	value float64
	// wave drives independent sources.
	wave Waveform
	// ic is the capacitor initial voltage.
	ic float64
	// prevI is the capacitor's previous-step current (trapezoidal rule).
	prevI float64
	// Diode parameters.
	isat, vt float64
	// Switch parameters.
	ron, roff, vth float64
	// Op amp parameters: open-loop gain and saturation.
	gain, vmax float64
	// Newton limiting memory (pnjlim-style) for the op amp knee.
	lastVc  float64
	hasLast bool
	// branch is the extra MNA variable index for sources/op amps.
	branch int
	// f is the nonlinear function of a dFunc element; ctrl its inputs.
	f    func(v []float64) float64
	ctrl []Node
}

// Method selects the transient integration scheme.
type Method int

// Integration methods.
const (
	// BackwardEuler is robust and strongly damped (the default).
	BackwardEuler Method = iota
	// Trapezoidal is second-order accurate with no numerical damping.
	Trapezoidal
)

// SolverMode selects the linear-solver implementation backing DC, transient
// and AC analyses. All modes except SolverFast produce bit-identical
// solutions and differ only in speed and allocation behavior; SolverFast
// trades byte-identity for speed under a contractual ErrorBudget (see
// compare.go).
type SolverMode int

const (
	// SolverAuto picks the dense factorization below the sparse crossover
	// dimension and the CSR factorization above it (the default).
	SolverAuto SolverMode = iota
	// SolverDense forces the flat row-major in-place LU.
	SolverDense
	// SolverSparse forces the CSR in-place LU.
	SolverSparse
	// SolverReference selects the original allocate-per-solve dense
	// eliminator, kept as the oracle for equivalence tests.
	SolverReference
	// SolverFast selects the tolerance-tier engine: fill-reducing
	// threshold-Markowitz ordering, a static fill-closed elimination
	// schedule free to reorder arithmetic and skip numerically-dead work,
	// and factorization reuse across Newton iterations and timesteps
	// (chord Newton in residual form). Results are deterministic but not
	// byte-identical to the other tiers; they are guaranteed to stay
	// within Circuit.Budget of the SolverReference trace (fast.go,
	// ordering.go).
	SolverFast
)

// defaultSparseCrossover is the reduced-system dimension at which
// SolverAuto switches from dense to CSR. Elaborated op-amp macromodel
// circuits are mostly structural zeros well before this size, and with the
// elimination replay cache the CSR path overtakes the dense one at around a
// dozen unknowns (measured on the corpus receiver/missile circuits).
const defaultSparseCrossover = 12

// SolverStats counts the work done by the linear-algebra core of a circuit
// across all DC, transient and AC analyses run on it.
type SolverStats struct {
	// NewtonIterations counts nonlinear iterations across all solves.
	NewtonIterations int64
	// Factorizations counts LU factorizations: one per Newton iteration
	// plus one per AC frequency point.
	Factorizations int64
	// FactorReuses counts SolverFast Newton iterations that reused the
	// previous factorization instead of refactoring (chord steps).
	FactorReuses int64
	// Orderings counts SolverFast fill-reducing symbolic orderings
	// (one per stamp plan, plus one per pivot-monitor-forced reorder).
	Orderings int64
	// Fallbacks counts SolverFast solve points that exhausted the fast
	// Newton budget and were re-solved by the exact tier's loop.
	Fallbacks int64
	// PeakDim is the largest reduced-system dimension solved.
	PeakDim int
	// Sparse reports whether the current stamp plan uses the CSR
	// factorization.
	Sparse bool
	// Nonzeros is the number of stamped matrix slots; Fill is the number
	// of extra slots added by the symbolic elimination analysis.
	Nonzeros, Fill int
}

// String renders the stats as a one-line summary, the format behind the
// vasesim -stats flag.
func (s SolverStats) String() string {
	plan := "dense"
	if s.Sparse {
		plan = fmt.Sprintf("sparse (%d stamped + %d fill)", s.Nonzeros, s.Fill)
	}
	out := fmt.Sprintf("dim %d %s, %d newton iterations, %d factorizations",
		s.PeakDim, plan, s.NewtonIterations, s.Factorizations)
	if s.FactorReuses > 0 || s.Orderings > 0 {
		out += fmt.Sprintf(", %d reused, %d orderings", s.FactorReuses, s.Orderings)
	}
	if s.Fallbacks > 0 {
		out += fmt.Sprintf(", %d exact fallbacks", s.Fallbacks)
	}
	return out
}

// Circuit is a netlist of MNA devices.
type Circuit struct {
	names   map[string]Node
	nodes   int // highest node index
	devices []*device
	// method is the transient integration scheme.
	method Method

	// MaxNewtonIter bounds the Newton iteration count per solve point
	// (0 = the default of 300). Exceeding it is a convergence error.
	MaxNewtonIter int
	// MaxTranSteps bounds the number of transient steps (0 = unlimited).
	// When it binds the transient returns the truncated trace computed so
	// far with Tran.Truncated set, not an error.
	MaxTranSteps int

	// Solver selects the linear-solver implementation (see SolverMode).
	Solver SolverMode
	// SparseCrossover overrides the dimension at which SolverAuto switches
	// from the dense to the CSR factorization (0 = the default of 12).
	SparseCrossover int
	// Workers bounds the AC-sweep fan-out (0 = all CPUs, 1 = sequential).
	// Every worker count produces the identical sweep.
	Workers int
	// Budget is the SolverFast error budget: the fast tier's traces are
	// guaranteed to stay within it of the SolverReference traces,
	// point for point (zero fields take the documented defaults; other
	// solver modes ignore it).
	Budget ErrorBudget

	// OnSample, when set, is called once per recorded transient sample with
	// the sample time and the solution vector (node voltages indexed by
	// Node, branch currents after them). It is the attachment point for
	// streaming assertion monitors (internal/assertlang), which observe
	// even the samples of a run later truncated by cancellation. The
	// callback must not retain the slice: it is the live iterate buffer.
	OnSample func(t float64, v Solution)

	// sol is the cached stamp plan + factorization workspace, rebuilt when
	// the device list or dimension changes.
	sol   *solver
	stats SolverStats
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		names: map[string]Node{"0": Ground, "gnd": Ground},
	}
}

// SetMethod selects the transient integration scheme.
func (c *Circuit) SetMethod(m Method) { c.method = m }

// SolverStats reports the cumulative linear-algebra work done by this
// circuit's analyses so far.
func (c *Circuit) SolverStats() SolverStats { return c.stats }

// NodeByName interns a named node.
func (c *Circuit) NodeByName(name string) Node {
	if n, ok := c.names[name]; ok {
		return n
	}
	c.nodes++
	n := Node(c.nodes)
	c.names[name] = n
	return n
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return c.nodes }

func (c *Circuit) track(ns ...Node) {
	for _, n := range ns {
		if int(n) > c.nodes {
			c.nodes = int(n)
		}
	}
}

// AddR connects a resistor between a and b.
func (c *Circuit) AddR(name string, a, b Node, ohms float64) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dResistor, name: name, a: a, b: b, value: ohms})
}

// AddC connects a capacitor with an initial voltage.
func (c *Circuit) AddC(name string, a, b Node, farads, ic float64) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dCapacitor, name: name, a: a, b: b, value: farads, ic: ic})
}

// AddV connects an independent voltage source (a positive w.r.t. b).
func (c *Circuit) AddV(name string, a, b Node, wave Waveform) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dVSource, name: name, a: a, b: b, wave: wave})
}

// AddI connects an independent current source flowing from a to b.
func (c *Circuit) AddI(name string, a, b Node, wave Waveform) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dISource, name: name, a: a, b: b, wave: wave})
}

// AddVCVS connects a linear voltage-controlled voltage source:
// V(a,b) = gain * V(cp,cm).
func (c *Circuit) AddVCVS(name string, a, b, cp, cm Node, gain float64) {
	c.track(a, b, cp, cm)
	c.devices = append(c.devices, &device{kind: dVCVS, name: name, a: a, b: b, cp: cp, cm: cm, value: gain})
}

// AddDiode connects a diode (anode a, cathode b).
func (c *Circuit) AddDiode(name string, a, b Node) {
	c.track(a, b)
	c.devices = append(c.devices, &device{kind: dDiode, name: name, a: a, b: b, isat: 1e-14, vt: 0.02585})
}

// AddSwitch connects a voltage-controlled switch between a and b, closed
// when V(cp,cm) > vth.
func (c *Circuit) AddSwitch(name string, a, b, cp, cm Node, ron, roff, vth float64) {
	c.track(a, b, cp, cm)
	c.devices = append(c.devices, &device{
		kind: dSwitch, name: name, a: a, b: b, cp: cp, cm: cm,
		ron: ron, roff: roff, vth: vth,
	})
}

// AddOpAmp connects a saturating op-amp macromodel: a single-ended output
// at node a driven to vmax*tanh(gain*V(cp,cm)/vmax).
func (c *Circuit) AddOpAmp(name string, a, cp, cm Node, gain, vmax float64) {
	c.track(a, cp, cm)
	c.devices = append(c.devices, &device{
		kind: dOpAmp, name: name, a: a, cp: cp, cm: cm, gain: gain, vmax: vmax,
	})
}

// AddFunc connects a behavioral voltage source: V(a) = f(V(ctrl[0]), ...).
// It models computational cells (multipliers, log elements) whose
// transistor-level detail is outside the macromodel scope.
func (c *Circuit) AddFunc(name string, a Node, ctrl []Node, f func(v []float64) float64) {
	c.track(a)
	c.track(ctrl...)
	c.devices = append(c.devices, &device{kind: dFunc, name: name, a: a, ctrl: ctrl, f: f})
}

// assignBranches numbers the extra MNA variables.
func (c *Circuit) assignBranches() int {
	nb := 0
	for _, d := range c.devices {
		switch d.kind {
		case dVSource, dVCVS, dOpAmp, dFunc:
			d.branch = c.nodes + 1 + nb
			nb++
		}
	}
	return nb
}

// Solution is one operating point: index 1..NumNodes are node voltages.
type Solution []float64

// V returns the voltage of node n.
func (s Solution) V(n Node) float64 {
	if n == Ground || int(n) >= len(s) {
		return 0
	}
	return s[n]
}

// ---------------------------------------------------------------------------
// Device linearization. These helpers hold the per-iteration companion
// models shared by the plan-based and reference stamping paths, so the two
// cannot drift numerically.

// diodeLinearize returns the small-signal conductance and equivalent
// current of the diode at junction voltage v.
func (d *device) diodeLinearize(v float64) (g, ieq float64) {
	// Limit the junction voltage for convergence.
	if v > 0.9 {
		v = 0.9
	}
	e := math.Exp(v / d.vt)
	i := d.isat * (e - 1)
	g = d.isat * e / d.vt
	if g < 1e-12 {
		g = 1e-12
	}
	return g, i - g*v
}

// switchR returns the switch resistance for the control voltage vc.
func (d *device) switchR(vc float64) float64 {
	if vc > d.vth {
		return d.ron
	}
	return d.roff
}

// opampLinearize returns the linearized gain and right-hand side of the
// saturating op-amp characteristic at control voltage vc, updating the
// per-device Newton limiting memory.
func (d *device) opampLinearize(vc float64) (dg, rhs float64) {
	knee := d.vmax / d.gain
	// Deep saturation is flat: clamping the linearization point to
	// ±20 knee widths leaves the model output unchanged but keeps
	// the point a few iterations away from the active region.
	if vc > 20*knee {
		vc = 20 * knee
	} else if vc < -20*knee {
		vc = -20 * knee
	}
	// Limit the per-iteration excursion to a few knee widths
	// (SPICE junction-limiting style) so Newton cannot jump across
	// the knee and oscillate.
	if d.hasLast {
		lim := 4 * knee
		if vc > d.lastVc+lim {
			vc = d.lastVc + lim
		} else if vc < d.lastVc-lim {
			vc = d.lastVc - lim
		}
	}
	d.lastVc = vc
	d.hasLast = true
	arg := d.gain * vc / d.vmax
	out := d.vmax * math.Tanh(arg)
	// Derivative of the saturating characteristic.
	sech := 1 / math.Cosh(arg)
	dg = d.gain * sech * sech
	// Equation: V(a) - (out + dg*(vc' - vc)) = 0.
	return dg, out - dg*vc
}

// funcLinearize evaluates the behavioral element around x: scratch receives
// the control voltages (len(d.ctrl)), dps the numeric Jacobian per control
// (0 for grounded controls), and the return value is the right-hand side of
// the linearized branch equation.
func (d *device) funcLinearize(x Solution, scratch, dps []float64) float64 {
	for i, n := range d.ctrl {
		scratch[i] = x.V(n)
	}
	out := d.f(scratch)
	rhs := out
	const eps = 1e-6
	for i, n := range d.ctrl {
		if n == Ground {
			dps[i] = 0
			continue
		}
		scratch[i] += eps
		dp := (d.f(scratch) - out) / eps
		scratch[i] -= eps
		dps[i] = dp
		rhs -= dp * scratch[i]
	}
	return rhs
}

// ---------------------------------------------------------------------------
// Newton iteration.

const (
	defaultNewtonIter = 300
	newtonMaxChange   = 0.5 // volts per Newton step
	newtonTol         = 1e-8
)

// newtonFast iterates the nonlinear system to convergence with a damped
// update: the per-iteration voltage change is limited so that the
// saturating op-amp and diode characteristics cannot make the iteration
// oscillate across their knees. Cancellation is observed between
// iterations, so no solve can hold its goroutine past the caller's deadline
// by more than one iteration.
//
// dst is the caller's iterate buffer (len s.dim+1); the converged solution
// is returned aliasing dst. The loop allocates nothing: stamping writes
// through the plan's precomputed slots and the factorization runs in place
// inside the solver workspace (pinned by TestNewtonZeroAllocs).
func (c *Circuit) newtonFast(ctx context.Context, s *solver, dst, x0, prev Solution, t, h float64) (Solution, error) {
	copy(dst, x0)
	for _, d := range c.devices {
		d.hasLast = false
	}
	maxIter := c.MaxNewtonIter
	if maxIter <= 0 {
		maxIter = defaultNewtonIter
	}
	next := s.next
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("mna: solve at t=%g cancelled: %w", t, err)
		}
		// Snapshot the op-amp Newton-limiting state: a restamp after
		// adaptive pattern growth must replay the identical linearization,
		// and opampLinearize advances lastVc on every call.
		for i, d := range s.ops {
			s.opVc[i], s.opHas[i] = d.lastVc, d.hasLast
		}
		s.clear()
		c.stampInto(s, dst, prev, t, h)
		c.stats.Factorizations++
		err := s.factorSolve(next)
		for err == errPatternGrown {
			// The sparse pattern just absorbed new elimination fill:
			// relayout the plan, restamp and refactor. Growth is
			// monotone, so this settles after the first few solves.
			c.layout(s)
			for i, d := range s.ops {
				d.lastVc, d.hasLast = s.opVc[i], s.opHas[i]
			}
			s.clear()
			c.stampInto(s, dst, prev, t, h)
			c.stats.Factorizations++
			err = s.factorSolve(next)
		}
		if err != nil {
			return nil, err
		}
		c.stats.NewtonIterations++
		worst := 0.0
		for i := 1; i < len(next); i++ {
			if d := math.Abs(next[i] - dst[i]); d > worst {
				worst = d
			}
		}
		alpha := 1.0
		if worst > newtonMaxChange {
			alpha = newtonMaxChange / worst
		}
		for i := 1; i < len(next); i++ {
			dst[i] += alpha * (next[i] - dst[i])
		}
		if worst < newtonTol {
			return dst, nil
		}
	}
	return dst, fmt.Errorf("mna: Newton iteration did not converge at t=%g", t)
}

// DC computes the operating point at t=0.
func (c *Circuit) DC() (Solution, error) {
	return c.DCContext(context.Background())
}

// DCContext computes the operating point at t=0 under a context: the Newton
// iteration polls ctx between iterations and returns the context error on
// cancellation (a half-converged operating point is not useful).
func (c *Circuit) DCContext(ctx context.Context) (Solution, error) {
	if c.Solver == SolverReference {
		nb := c.assignBranches()
		m := newMatrix(c.nodes + nb)
		zero := make(Solution, c.nodes+nb+1)
		return c.newtonRef(ctx, m, zero, zero, 0, -1)
	}
	s, err := c.ensureSolver()
	if err != nil {
		return nil, err
	}
	dst := make(Solution, s.dim+1)
	if c.Solver == SolverFast {
		return c.newtonFastTier(ctx, s, dst, s.zero, s.zero, 0, -1)
	}
	return c.newtonFast(ctx, s, dst, s.zero, s.zero, 0, -1)
}

// Tran holds a transient result.
type Tran struct {
	Time []float64
	// V holds node voltage waveforms indexed by node.
	V map[Node][]float64
	// Truncated marks a run stopped early by cancellation, deadline or
	// Circuit.MaxTranSteps: Time/V hold the samples computed so far.
	Truncated bool
	c         *Circuit
}

// Node returns the waveform of a named node.
func (tr *Tran) Node(name string) []float64 {
	n, ok := tr.c.names[name]
	if !ok {
		return nil
	}
	return tr.V[n]
}

// Transient runs a fixed-step backward-Euler transient analysis.
func (c *Circuit) Transient(tstop, h float64) (*Tran, error) {
	return c.TransientContext(context.Background(), tstop, h)
}

// TransientContext is Transient under a context. The transient is an
// anytime computation: on cancellation or deadline expiry (and when
// Circuit.MaxTranSteps binds) it returns the trace computed so far with
// Tran.Truncated set and a nil error; genuine solve failures still return
// an error.
func (c *Circuit) TransientContext(ctx context.Context, tstop, h float64) (*Tran, error) {
	if tstop <= 0 || h <= 0 {
		return nil, fmt.Errorf("mna: tstop and h must be positive")
	}

	// newton dispatches to the selected solver implementation; dst is the
	// reusable iterate buffer of the plan-based path (the reference path
	// allocates per solve, matching the seed behavior).
	var refM *matrix
	var s *solver
	var dim int
	if c.Solver == SolverReference {
		nb := c.assignBranches()
		dim = c.nodes + nb
		refM = newMatrix(dim)
	} else {
		var err error
		s, err = c.ensureSolver()
		if err != nil {
			return nil, err
		}
		dim = s.dim
	}
	newton := func(dst, x0, prev Solution, t float64) (Solution, error) {
		if refM != nil {
			return c.newtonRef(ctx, refM, x0, prev, t, h)
		}
		if c.Solver == SolverFast {
			return c.newtonFastTier(ctx, s, dst, x0, prev, t, h)
		}
		return c.newtonFast(ctx, s, dst, x0, prev, t, h)
	}

	// Initial condition: capacitor ICs enforced via a pseudo-DC with the
	// companion model of a tiny step.
	x := make(Solution, dim+1)
	xNext := make(Solution, dim+1)
	prev := make(Solution, dim+1)
	for _, d := range c.devices {
		if d.kind == dCapacitor && d.ic != 0 {
			prev[d.a] = d.ic
		}
	}
	x0, err := newton(xNext, x, prev, 0)
	if err != nil {
		return nil, err
	}
	x, xNext = x0, x

	steps := int(math.Ceil(tstop / h))
	tr := &Tran{V: map[Node][]float64{}, c: c}
	if c.MaxTranSteps > 0 && steps > c.MaxTranSteps {
		steps = c.MaxTranSteps
		tr.Truncated = true
	}

	// Sample storage is preallocated per node and published into the map
	// once, so the per-step recording is append-free and map-free.
	tr.Time = make([]float64, 0, steps+1)
	cols := make([][]float64, c.nodes+1)
	for i := 1; i <= c.nodes; i++ {
		cols[i] = make([]float64, 0, steps+1)
	}
	record := func(t float64, s Solution) {
		tr.Time = append(tr.Time, t)
		for i := 1; i <= c.nodes; i++ {
			cols[i] = append(cols[i], s[i])
		}
		if c.OnSample != nil {
			c.OnSample(t, s)
		}
	}
	finish := func() {
		for i := 1; i <= c.nodes; i++ {
			tr.V[Node(i)] = cols[i]
		}
	}
	record(0, x)
	// Initialize capacitor current memory for the trapezoidal rule.
	for _, d := range c.devices {
		if d.kind == dCapacitor {
			d.prevI = 0
		}
	}
	for step := 1; step <= steps; step++ {
		t := float64(step) * h
		next, err := newton(xNext, x, x, t)
		if err != nil {
			if ctx.Err() != nil {
				// Cancelled mid-solve: the samples up to the previous step
				// stand as the (truncated) result.
				tr.Truncated = true
				finish()
				return tr, nil
			}
			return nil, err
		}
		if c.method == Trapezoidal {
			for _, d := range c.devices {
				if d.kind != dCapacitor {
					continue
				}
				vprev := x.V(d.a) - x.V(d.b)
				vnew := next.V(d.a) - next.V(d.b)
				d.prevI = 2*d.value/h*(vnew-vprev) - d.prevI
			}
		}
		x, xNext = next, x
		record(t, x)
	}
	finish()
	return tr, nil
}

// Max returns the maximum of a node waveform.
func (tr *Tran) Max(name string) float64 {
	m := math.Inf(-1)
	for _, v := range tr.Node(name) {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum of a node waveform.
func (tr *Tran) Min(name string) float64 {
	m := math.Inf(1)
	for _, v := range tr.Node(name) {
		if v < m {
			m = v
		}
	}
	return m
}

package sema

import (
	"vase/internal/ast"
)

// SymbolKind classifies resolved names.
type SymbolKind int

// Symbol kinds.
const (
	SymQuantity SymbolKind = iota
	SymSignal
	SymTerminal
	SymConstant
	SymVariable
	SymFunction
	SymLoopVar
)

// String renders the symbol kind.
func (k SymbolKind) String() string {
	switch k {
	case SymQuantity:
		return "quantity"
	case SymSignal:
		return "signal"
	case SymTerminal:
		return "terminal"
	case SymConstant:
		return "constant"
	case SymVariable:
		return "variable"
	case SymFunction:
		return "function"
	case SymLoopVar:
		return "loop variable"
	}
	return "symbol"
}

// SignalKind is the physical facet of an analog signal, from the "is
// voltage" / "is current" annotations.
type SignalKind int

// Signal kinds. KindUnspecified is the default (treated as voltage-mode by
// synthesis).
const (
	KindUnspecified SignalKind = iota
	KindVoltage
	KindCurrent
)

// String renders the signal kind.
func (k SignalKind) String() string {
	switch k {
	case KindVoltage:
		return "voltage"
	case KindCurrent:
		return "current"
	}
	return "unspecified"
}

// PortAttr carries the resolved synthesis annotations of a port or quantity:
// its physical kind, limiting, drive and impedance requirements, and value /
// frequency ranges. Zero values mean "not annotated".
type PortAttr struct {
	Kind       SignalKind
	Limited    bool
	LimitAt    float64 // clipping level in volts; 0 means library default
	DrivesOhms float64 // external load resistance
	PeakDrive  float64 // required peak amplitude into the load
	FreqLo     float64
	FreqHi     float64
	Impedance  float64
	RangeLo    float64
	RangeHi    float64
	HasRange   bool
	HasFreq    bool
}

// Symbol is a resolved declaration.
type Symbol struct {
	Name  string // canonical (lower case)
	Orig  string // original spelling
	Kind  SymbolKind
	Type  Type
	Mode  ast.Mode // for ports; ModeNone otherwise
	Attr  PortAttr
	Decl  ast.Node
	Func  *Func  // for SymFunction
	Const *Value // for SymConstant once evaluated
	// IsPort marks entity ports.
	IsPort bool
}

// Func is a resolved VASS function: a pure mapping from real parameters to a
// real result, usable from procedural statements.
type Func struct {
	Name    string
	Params  []*Symbol
	Result  Type
	Decl    *ast.FunctionDecl // nil for builtins
	Builtin string            // non-empty for builtins: "log", "exp", ...
}

// Scope is a lexically nested symbol table.
type Scope struct {
	parent *Scope
	syms   map[string]*Symbol
}

// NewScope returns a scope nested in parent (which may be nil).
func NewScope(parent *Scope) *Scope {
	return &Scope{parent: parent, syms: make(map[string]*Symbol)}
}

// Declare inserts sym and reports whether the name was free in this scope.
func (s *Scope) Declare(sym *Symbol) bool {
	if _, exists := s.syms[sym.Name]; exists {
		return false
	}
	s.syms[sym.Name] = sym
	return true
}

// Lookup resolves name through the scope chain; nil when undeclared.
func (s *Scope) Lookup(name string) *Symbol {
	for sc := s; sc != nil; sc = sc.parent {
		if sym, ok := sc.syms[name]; ok {
			return sym
		}
	}
	return nil
}

// LookupLocal resolves name in this scope only.
func (s *Scope) LookupLocal(name string) *Symbol {
	return s.syms[name]
}
